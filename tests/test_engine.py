"""Differential tests for the fast and specialized engines.

The fast engine (``repro.machine.engine``) and the specializing code
generator (``repro.machine.codegen``) promise *bit-identical*
committed state to the reference ``step()`` interpreter: cycle counts,
registers, final PCs, every stats field — including the chronological
insertion order of the ``per_opcode``/``per_fu_ops`` dicts, whose
iteration order feeds energy reports summed under a zero-tolerance CI
gate — plus condition codes, memory contents, port counters, and the
registered sync vector.  These tests enforce that contract on the
paper's workloads, on the prototype-config variants, on randomized
programs spanning the whole ISA (memory-mapped device layouts
included: port counters, the ``io`` report section, and ``IOError``
paths), on SSET trackers (replayed through the deferred feed, end
state and sampled partition events identical), and on the documented
fallback rules (full-trace observer / trace / port caps force the
reference path; counter-only and sampled observers, devices, and
trackers do not), and on the tier-0 telemetry the fast engine
accumulates natively.
"""

import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro.asm import assemble
from repro.isa import (
    Condition,
    Const,
    ControlOp,
    DataOp,
    Parcel,
    Reg,
    SyncValue,
)
from repro.isa.opcodes import ALL_MNEMONICS, OPCODES
from repro.machine import (
    DeviceMap,
    InputPort,
    MachineError,
    OutputPort,
    Program,
    TrackerKind,
    VliwMachine,
    XimdMachine,
    fast_path_blockers,
    fast_path_eligible,
    prototype_config,
    research_config,
    specialized_eligible,
)
from repro.obs import Observer, RunReport, observed, recording_observer
from repro.workloads import (
    BITCOUNT_REGS,
    LL12_REGS,
    MINMAX_REGS,
    TPROC_REGS,
    bitcount_memory,
    bitcount_total_source,
    bitcount_vliw_source,
    livermore12_memory,
    livermore12_source,
    iosync_sync_source,
    longrunner_program,
    longrunner_vliw_program,
    make_devices,
    minmax_memory,
    minmax_source,
    minmax_vliw_source,
    random_ints,
    random_words,
    tproc_source,
)

# ---------------------------------------------------------------------------
# differential harness


def _fresh(cls, source, regs=None, mem=None, config=None, **kwargs):
    program = assemble(source) if isinstance(source, str) else source
    machine = cls(program, config=config, **kwargs)
    for index, value in (regs or {}).items():
        machine.regfile.poke(index, value)
    for address, value in (mem or {}).items():
        machine.memory.poke(address, value)
    return machine


def _canon(value):
    """Make NaN comparable: ``float('nan') != float('nan')``, so two
    engines that both compute NaN (``fdiv 0/0`` then arithmetic on the
    result allocates fresh NaN objects) would spuriously diverge."""
    if isinstance(value, float) and value != value:
        return "NaN"
    if isinstance(value, tuple) or isinstance(value, list):
        return tuple(_canon(v) for v in value)
    if isinstance(value, dict):
        return {k: _canon(v) for k, v in value.items()}
    return value


def _result_fingerprint(result):
    return (
        result.cycles,
        result.halted,
        _canon(result.registers),
        tuple(result.final_pcs),
        dataclasses.asdict(result.stats),
        tuple(result.stats.per_opcode.items()),
        tuple(result.stats.per_fu_ops.items()),
    )


def _device_fingerprint(memory):
    """End state of every mapped device: kind, range, and counters."""
    out = []
    for base, end, device in memory.devices.ranges():
        if isinstance(device, InputPort):
            out.append((base, end, "in", device.reads,
                        device.polls_failed, device.delivered))
        elif isinstance(device, OutputPort):
            out.append((base, end, "out", tuple(device.writes)))
        else:
            out.append((base, end, type(device).__name__))
    return tuple(out)


def _machine_fingerprint(machine):
    """Committed machine state beyond what ExecutionResult carries."""
    memory = machine.memory
    mem_words = (memory._data if hasattr(memory, "_data")
                 else memory._banks)
    return (
        _canon(machine.cc._values),
        tuple(machine.cc._defined),
        _canon(mem_words),
        memory.loads,
        memory.stores,
        memory.conflicts_dropped,
        machine.regfile.total_reads,
        machine.regfile.total_writes,
        machine.regfile.conflicts_dropped,
        machine.regfile.peak_reads,
        machine.regfile.peak_writes,
        getattr(machine, "_prev_ss", None),
        _device_fingerprint(memory),
    )


def _run(make, engine, limit):
    """(machine, result-or-None, error-or-None) for one engine.

    Besides :class:`MachineError`, the datapath lets Python numeric
    errors escape (``int(inf)``, float NaN conversions), and device
    accesses may raise ``IOError`` (an ``OSError``); the contract is
    that both engines raise the identical exception.
    """
    machine = make()
    try:
        result = machine.run(limit, engine=engine)
    except (MachineError, ArithmeticError, ValueError, OSError) as exc:
        return machine, None, (type(exc).__name__, str(exc))
    assert machine.engine_used == engine
    return machine, result, None


def assert_identical(make, limit=5_000_000):
    """Run *make()* under every engine; demand bit-identical outcomes.

    Successful runs must match on every committed observable.  Runs
    that raise must raise the same exception type and message under
    every engine; post-exception aggregate state is documented as
    unspecified and is not compared.  The specialized engine joins the
    comparison whenever the machine is eligible for it (three-way);
    reference vs fast is always checked.
    """
    ref_machine, ref, ref_err = _run(make, "reference", limit)
    engines = ["fast"]
    if specialized_eligible(make()):
        engines.append("specialized")
    for engine in engines:
        machine, result, err = _run(make, engine, limit)
        assert err == ref_err, engine
        if ref_err is None:
            assert (_result_fingerprint(result)
                    == _result_fingerprint(ref)), engine
            assert (_machine_fingerprint(machine)
                    == _machine_fingerprint(ref_machine)), engine


# ---------------------------------------------------------------------------
# the paper's workloads, both machines

_MM_DATA = random_ints(64, seed=3)[1:]
_BC_DATA = random_words(48, seed=4)
_LL12_Y = random_ints(101, seed=5)
_TPROC_REGS = {TPROC_REGS[n]: v for n, v in zip("abcd", (5, 6, 7, 8))}

PAPER_WORKLOADS = {
    "minmax-ximd": lambda config=None: _fresh(
        XimdMachine, minmax_source("halt"),
        {MINMAX_REGS["n"]: len(_MM_DATA)}, minmax_memory(_MM_DATA),
        config=config),
    "minmax-vliw": lambda config=None: _fresh(
        VliwMachine, minmax_vliw_source(),
        {MINMAX_REGS["n"]: len(_MM_DATA)}, minmax_memory(_MM_DATA),
        config=config),
    "bitcount-ximd": lambda config=None: _fresh(
        XimdMachine, bitcount_total_source(),
        {BITCOUNT_REGS["n"]: 48}, bitcount_memory(_BC_DATA),
        config=config),
    "bitcount-vliw": lambda config=None: _fresh(
        VliwMachine, bitcount_vliw_source(),
        {BITCOUNT_REGS["n"]: 48}, bitcount_memory(_BC_DATA),
        config=config),
    "tproc-ximd": lambda config=None: _fresh(
        XimdMachine, tproc_source(), _TPROC_REGS, config=config),
    "tproc-vliw": lambda config=None: _fresh(
        VliwMachine, tproc_source(), _TPROC_REGS, config=config),
    "ll12-ximd": lambda config=None: _fresh(
        XimdMachine, livermore12_source(),
        {LL12_REGS["n"]: 100}, livermore12_memory(_LL12_Y), config=config),
    "ll12-vliw": lambda config=None: _fresh(
        VliwMachine, livermore12_source(),
        {LL12_REGS["n"]: 100}, livermore12_memory(_LL12_Y), config=config),
}


class TestPaperWorkloads:
    @pytest.mark.parametrize("name", sorted(PAPER_WORKLOADS))
    def test_bit_identical(self, name):
        assert_identical(PAPER_WORKLOADS[name])

    @pytest.mark.parametrize("name", ["minmax-ximd", "tproc-ximd",
                                      "tproc-vliw"])
    def test_bit_identical_prototype_config(self, name):
        """Increment sequencer, distributed memory, write latency 2."""
        make = PAPER_WORKLOADS[name]
        width = make().program.width
        assert_identical(lambda: make(config=prototype_config(width)))

    def test_bit_identical_registered_ss(self):
        """The one-cycle-delayed sync vector (prototype control path)."""
        make = PAPER_WORKLOADS["bitcount-ximd"]
        width = make().program.width
        assert_identical(lambda: make(
            config=research_config(width, ss_registered=True)))

    def test_bit_identical_write_latency_three(self):
        make = PAPER_WORKLOADS["tproc-ximd"]
        width = make().program.width
        assert_identical(lambda: make(
            config=research_config(width, write_latency=3)))


class TestLongRunner:
    @pytest.mark.parametrize("generator", [longrunner_program,
                                           longrunner_vliw_program])
    def test_bit_identical(self, generator):
        def make():
            program, registers = generator(iterations=300)
            cls = (XimdMachine if generator is longrunner_program
                   else VliwMachine)
            machine = cls(program)
            for index, value in registers.items():
                machine.regfile.poke(index, value)
            return machine

        assert_identical(make)

    def test_cycle_count_formula(self):
        program, registers = longrunner_program(iterations=100)
        machine = XimdMachine(program)
        for index, value in registers.items():
            machine.regfile.poke(index, value)
        result = machine.run(10_000, engine="fast")
        assert result.cycles == 3 * (100 + 1)
        assert result.stats.utilization(machine.config.n_fus) == 1.0


class TestMidRunResume:
    """The fast engine seeds from live machine state, so it can take
    over a machine that already executed reference cycles (including a
    partially-filled write pipeline under write_latency > 1)."""

    @pytest.mark.parametrize("engine", ["fast", "specialized"])
    @pytest.mark.parametrize("config", [None, "prototype"])
    def test_step_then_engine_matches_reference(self, config, engine):
        def make():
            cfg = None
            if config == "prototype":
                cfg = prototype_config(
                    assemble(minmax_source("halt")).width)
            return PAPER_WORKLOADS["minmax-ximd"](config=cfg)

        baseline = make()
        reference = baseline.run(100_000, engine="reference")

        resumed = make()
        for _ in range(5):
            resumed.step()
        result = resumed.run(100_000, engine=engine)
        assert resumed.engine_used == engine
        assert result.cycles == reference.cycles
        assert result.registers == reference.registers
        assert tuple(result.final_pcs) == tuple(reference.final_pcs)
        assert result.stats == reference.stats
        assert (_machine_fingerprint(resumed)
                == _machine_fingerprint(baseline))


# ---------------------------------------------------------------------------
# tier-0 telemetry: the fast engine's native counters vs the reference


def _telemetry_snapshot(obs):
    """``registry.to_dict()`` minus wall-clock timers — the only
    instruments whose values are legitimately nondeterministic."""
    return {name: data for name, data in obs.registry.to_dict().items()
            if data.get("type") != "timer"}


def _counters_fingerprint(machine):
    counters = machine.counters
    return (
        counters.machine_name,
        tuple(counters.class_counts),
        counters.branches_taken,
        counters.sync_done,
        counters.barriers,
        tuple(counters.wait_matrix),
        # insertion order is part of the contract (first-release order)
        tuple((site, tuple(cells))
              for site, cells in counters.barrier_profiles.items()),
    )


class TestTelemetryDifferential:
    """A counter-only observer must see bit-identical telemetry from
    both engines: every metric in the registry (timers aside), the raw
    RunCounters, and the register-file port peaks."""

    @pytest.mark.parametrize("name", sorted(PAPER_WORKLOADS))
    def test_counter_telemetry_bit_identical(self, name):
        machines = {}
        snaps = {}
        for engine in ("reference", "fast", "specialized"):
            obs = Observer()
            with observed(obs):
                machine = PAPER_WORKLOADS[name]()
            machine.run(5_000_000, engine=engine)
            assert machine.engine_used == engine
            machines[engine] = machine
            snaps[engine] = _telemetry_snapshot(obs)
        for engine in ("fast", "specialized"):
            assert snaps[engine] == snaps["reference"], engine
            assert (_counters_fingerprint(machines[engine])
                    == _counters_fingerprint(machines["reference"])), engine
            assert (_machine_fingerprint(machines[engine])
                    == _machine_fingerprint(machines["reference"])), engine

    @pytest.mark.parametrize("name", ["minmax-ximd", "tproc-vliw"])
    def test_counter_telemetry_prototype_config(self, name):
        """write_latency=2 exercises the drain-cycle port histogram."""
        make = PAPER_WORKLOADS[name]
        width = make().program.width
        snaps = {}
        for engine in ("reference", "fast", "specialized"):
            obs = Observer()
            with observed(obs):
                machine = make(config=prototype_config(width))
            machine.run(5_000_000, engine=engine)
            assert machine.engine_used == engine
            snaps[engine] = _telemetry_snapshot(obs)
        assert snaps["fast"] == snaps["reference"]
        assert snaps["specialized"] == snaps["reference"]

    def test_sampling_never_thins_counters(self):
        """Tier-1 sampling thins the event stream only: the registry
        must match a counter-only (tier-0) run exactly."""
        obs_sampled = recording_observer(sample_every=16)
        with observed(obs_sampled):
            sampled = PAPER_WORKLOADS["tproc-ximd"]()
        sampled.run(5_000_000, engine="fast")

        obs_counter = Observer()
        with observed(obs_counter):
            counted = PAPER_WORKLOADS["tproc-ximd"]()
        counted.run(5_000_000, engine="fast")
        assert (_telemetry_snapshot(obs_sampled)
                == _telemetry_snapshot(obs_counter))

    def test_error_ordering_deterministic(self):
        """All data ops execute before any control resolves (the
        reference phase order): FU1's bad store must win over FU0's
        bad SS index under both engines."""
        bad_ss = ControlOp(Condition.SS_DONE, 1, 1, index=7)
        program = Program([
            [Parcel(DataOp(OPCODES["nop"]), bad_ss, SyncValue.BUSY)],
            [Parcel(DataOp(OPCODES["store"], Const(1), Const(-3), None),
                    None, SyncValue.BUSY)],
        ])
        errors = {}
        for engine in ("reference", "fast", "specialized"):
            machine = XimdMachine(program, config=_lenient(2))
            try:
                machine.run(64, engine=engine)
            except MachineError as exc:
                errors[engine] = (type(exc).__name__, str(exc))
        assert errors["fast"] == errors["reference"]
        assert errors["specialized"] == errors["reference"]
        assert errors["reference"][0] == "MemoryError_"


# ---------------------------------------------------------------------------
# fallback rules: features the fast path does not model force reference


def _tproc(**kwargs):
    return _fresh(XimdMachine, tproc_source(), _TPROC_REGS, **kwargs)


class TestFallback:
    def test_default_machine_is_eligible(self):
        machine = _tproc()
        assert fast_path_eligible(machine)
        assert fast_path_blockers(machine) == []

    def test_trace_forces_reference(self):
        machine = _tproc(trace=True)
        assert not fast_path_eligible(machine)
        machine.run(1_000)
        assert machine.engine_used == "reference"

    def test_tracker_stays_fast(self):
        """SSET trackers run natively via the deferred replay feed."""
        machine = _tproc(tracker=TrackerKind.EXACT)
        assert fast_path_blockers(machine) == []
        machine.run(1_000)
        assert machine.engine_used == "fast"

    def test_tracker_with_full_tracing_forces_reference(self):
        """sample_every=1 sinks would need per-cycle tracker state, so
        the full-tracing blocker still applies with a tracker on."""
        machine = _tproc(tracker=TrackerKind.EXACT,
                         obs=recording_observer())
        machine.run(1_000)
        assert machine.engine_used == "reference"

    def test_counter_only_observer_specializes(self):
        """Tier-0: an enabled observer with no sinks folds into inline
        counter bumps in the generated loop."""
        machine = _tproc(obs=Observer())
        assert machine.obs.enabled
        assert fast_path_blockers(machine) == []
        machine.run(1_000)
        assert machine.engine_used == "specialized"

    def test_full_tracing_ring_buffer_stays_fast(self):
        """Tier-2 into ring buffers runs fast: events are chunk-buffered
        and flushed into the sink deques at stride boundaries."""
        machine = _tproc(obs=recording_observer())
        assert machine.obs.sinks
        assert fast_path_blockers(machine) == []
        machine.run(1_000)
        assert machine.engine_used == "fast"

    def test_full_tracing_non_ring_sink_forces_reference(self):
        """Tier-2 into a sink with per-event side effects (JSONL) still
        needs the reference path's per-cycle emission."""
        import io

        from repro.obs import JsonlSink

        machine = _tproc(obs=Observer(JsonlSink(io.StringIO())))
        blockers = fast_path_blockers(machine)
        assert any("non-ring-buffer" in blocker for blocker in blockers)
        machine.run(1_000)
        assert machine.engine_used == "reference"

    def test_sampled_tracing_observer_specializes(self):
        """Tier-1: sinks with sample_every > 1 fold into a single
        modulo guard in the generated loop."""
        machine = _tproc(obs=recording_observer(sample_every=8))
        assert machine.obs.sinks
        machine.run(1_000)
        assert machine.engine_used == "specialized"

    def test_devices_specialize(self):
        devices, *_ports = make_devices([(0, 1)], [(0, 2)])
        machine = _fresh(XimdMachine, tproc_source(), _TPROC_REGS,
                         devices=devices)
        assert fast_path_blockers(machine) == []
        machine.run(1_000)
        assert machine.engine_used == "specialized"

    @pytest.mark.parametrize("override", [{"max_read_ports": 4},
                                          {"max_write_ports": 2}])
    def test_port_caps_force_reference(self, override):
        """A port budget below the structural maximum needs the
        reference path's per-cycle overflow policing (the run itself
        may then legitimately die on PortOverflowError)."""
        width = assemble(tproc_source()).width
        machine = _tproc(config=research_config(width, **override))
        assert not fast_path_eligible(machine)
        assert any("port cap" in blocker
                   for blocker in fast_path_blockers(machine))
        with pytest.raises(MachineError, match="fast engine unavailable"):
            machine.run(1_000, engine="fast")

    def test_explicit_fast_on_ineligible_machine_raises(self):
        machine = _tproc(trace=True)
        with pytest.raises(MachineError, match="fast engine unavailable"):
            machine.run(1_000, engine="fast")

    def test_unknown_engine_rejected(self):
        machine = _tproc()
        with pytest.raises(ValueError, match="unknown engine"):
            machine.run(1_000, engine="turbo")

    def test_explicit_reference_never_uses_fast(self):
        machine = _tproc()
        machine.run(1_000, engine="reference")
        assert machine.engine_used == "reference"

    def test_fallback_still_bit_identical(self):
        """auto on an ineligible machine = plain reference execution."""
        plain = _tproc()
        expected = plain.run(1_000, engine="reference")
        traced = _tproc(trace=True)
        result = traced.run(1_000)
        assert traced.engine_used == "reference"
        assert result.cycles == expected.cycles
        assert result.registers == expected.registers


# ---------------------------------------------------------------------------
# property-based differential: random programs over the whole ISA

_CONDITIONALS = (Condition.CC_TRUE, Condition.SS_DONE,
                 Condition.ALL_SS_DONE, Condition.ANY_SS_DONE)


@st.composite
def _operand(draw, *, address_like=False):
    if address_like:
        # mostly-valid addresses; the occasional negative one exercises
        # the engines' matching out-of-range error messages
        return Const(draw(st.integers(-1, 24)))
    if draw(st.booleans()):
        return Reg(draw(st.integers(0, 3)))
    return Const(draw(st.integers(-3, 3)))


@st.composite
def _data_op(draw):
    opcode = OPCODES[draw(st.sampled_from(ALL_MNEMONICS))]
    from repro.isa import OpKind

    if opcode.kind is OpKind.NOP:
        return DataOp(opcode)
    address_like = opcode.kind in (OpKind.LOAD, OpKind.STORE)
    srca = draw(_operand(address_like=(opcode.kind is OpKind.LOAD)))
    srcb = draw(_operand(address_like=address_like))
    dest = (Reg(draw(st.integers(0, 3))) if opcode.writes_register
            else None)
    return DataOp(opcode, srca, srcb, dest)


@st.composite
def _control(draw, address, length, n_fus):
    """A random forward-only branch (or unconditional fallthrough)."""
    t1 = draw(st.integers(address + 1, length))
    condition = draw(st.sampled_from(
        (Condition.ALWAYS_T1, Condition.ALWAYS_T2) + _CONDITIONALS))
    if condition in (Condition.ALWAYS_T1, Condition.ALWAYS_T2):
        return ControlOp(condition, t1)
    t2 = draw(st.integers(address + 1, length))
    if condition in (Condition.CC_TRUE, Condition.SS_DONE):
        # one-past-the-end indices exercise the matching runtime errors
        return ControlOp(condition, t1, t2,
                         index=draw(st.integers(0, n_fus)))
    mask = None
    if draw(st.booleans()):
        mask = tuple(sorted(draw(st.sets(
            st.integers(0, n_fus - 1), min_size=1, max_size=n_fus))))
    return ControlOp(condition, t1, t2, mask=mask)


@st.composite
def random_programs(draw):
    """Short always-terminating programs over the full ISA.

    Branch targets only point forward, so every FU's PC strictly
    increases and the program halts within ``length`` cycles; the data
    ops still reach every opcode kind, both memory styles' error paths,
    division by zero, and out-of-range CC/SS indices.
    """
    n_fus = draw(st.integers(min_value=1, max_value=3))
    length = draw(st.integers(min_value=2, max_value=6))
    columns = []
    for _ in range(n_fus):
        column = []
        for address in range(length):
            control = None
            if address < length - 1 and draw(st.integers(0, 9)) > 0:
                control = draw(_control(address, length - 1, n_fus))
            sync = draw(st.sampled_from([SyncValue.BUSY, SyncValue.DONE]))
            column.append(Parcel(draw(_data_op()), control, sync))
        columns.append(column)
    return Program(columns)


def _lenient(width, **overrides):
    """Random programs hit the architecture's undefined same-cycle
    write conflicts; disable detection so the property under test is
    engine equivalence, not conflict policing."""
    return research_config(width, detect_register_conflicts=False,
                           detect_memory_conflicts=False, **overrides)


class TestRandomProgramEquivalence:
    @given(random_programs())
    @settings(max_examples=120, deadline=None)
    def test_ximd(self, program):
        assert_identical(
            lambda: XimdMachine(program, config=_lenient(program.width)),
            limit=64)

    @given(random_programs())
    @settings(max_examples=80, deadline=None)
    def test_ximd_registered_ss(self, program):
        assert_identical(
            lambda: XimdMachine(program, config=_lenient(
                program.width, ss_registered=True)),
            limit=64)

    @given(random_programs())
    @settings(max_examples=60, deadline=None)
    def test_ximd_prototype_style(self, program):
        config = prototype_config(
            program.width, detect_register_conflicts=False,
            detect_memory_conflicts=False)
        assert_identical(
            lambda: XimdMachine(program, config=config), limit=64)

    @given(random_programs())
    @settings(max_examples=80, deadline=None)
    def test_vliw(self, program):
        """Sync conditions raise on the VLIW machine — identically."""
        assert_identical(
            lambda: VliwMachine(program, config=_lenient(program.width)),
            limit=64)

    @given(random_programs())
    @settings(max_examples=40, deadline=None)
    def test_ximd_with_conflict_detection(self, program):
        """With detection on, conflicting programs must raise the same
        conflict error from both engines."""
        assert_identical(
            lambda: XimdMachine(program,
                                config=research_config(program.width)),
            limit=64)


# ---------------------------------------------------------------------------
# memory-mapped devices on the fast path: Figure 12 and random layouts


_IOSYNC_P1 = [(2, 11), (18, 12), (34, 13)]
_IOSYNC_P2 = [(10, 21), (26, 22), (42, 23)]


def _iosync_machine(**kwargs):
    devices, _in1, _in2, _out1, _out2 = make_devices(
        _IOSYNC_P1, _IOSYNC_P2)
    return _fresh(XimdMachine, iosync_sync_source(), devices=devices,
                  **kwargs)


@st.composite
def _port_layouts(draw):
    """1-3 single-word ports at distinct addresses inside the random
    programs' address range, so loads and stores actually hit them —
    including the read-an-OutputPort / write-an-InputPort IOError
    paths."""
    bases = draw(st.lists(st.integers(0, 24), unique=True,
                          min_size=1, max_size=3))
    layout = []
    for base in bases:
        if draw(st.booleans()):
            arrivals = draw(st.lists(
                st.tuples(st.integers(0, 40), st.integers(1, 99)),
                max_size=3))
            layout.append(("in", base, tuple(arrivals)))
        else:
            layout.append(("out", base, None))
    return tuple(layout)


def _layout_devices(layout):
    """A fresh (stateful!) DeviceMap from a layout spec — each engine
    run must get its own."""
    devices = DeviceMap()
    for kind, base, arrivals in layout:
        device = (InputPort(list(arrivals)) if kind == "in"
                  else OutputPort())
        devices.map(base, 1, device)
    return devices


class TestDeviceDifferential:
    def test_iosync_bit_identical(self):
        """Figure 12's polled-I/O workload, devices and all."""
        assert_identical(_iosync_machine)

    def test_iosync_telemetry_and_io_section_identical(self):
        machines = {}
        snaps = {}
        for engine in ("reference", "fast", "specialized"):
            obs = Observer()
            machine = _iosync_machine(obs=obs)
            machine.run(1_000_000, engine=engine)
            assert machine.engine_used == engine
            machines[engine] = machine
            snaps[engine] = _telemetry_snapshot(obs)
        ref_io = RunReport.from_machine(machines["reference"]).io
        for engine in ("fast", "specialized"):
            assert snaps[engine] == snaps["reference"], engine
            assert (_counters_fingerprint(machines[engine])
                    == _counters_fingerprint(machines["reference"])), engine
            assert RunReport.from_machine(machines[engine]).io == ref_io
        assert ref_io["reads"] > 0 and ref_io["writes"] > 0

    def test_iosync_sampled_events_identical(self):
        events = {}
        for engine in ("reference", "fast", "specialized"):
            obs = recording_observer(sample_every=4)
            machine = _iosync_machine(obs=obs)
            machine.run(1_000_000, engine=engine)
            assert machine.engine_used == engine
            events[engine] = [dataclasses.asdict(event)
                              for event in obs.sinks[0].events]
        assert events["fast"] == events["reference"]
        assert events["specialized"] == events["reference"]

    def test_write_to_input_port_raises_identically(self):
        def make():
            devices = DeviceMap()
            devices.map(5, 1, InputPort([(0, 7)]))
            program = Program([[Parcel(
                DataOp(OPCODES["store"], Const(1), Const(5), None),
                None, SyncValue.BUSY)]])
            return XimdMachine(program, config=_lenient(1),
                               devices=devices)

        assert_identical(make, limit=16)
        for engine in ("fast", "specialized"):
            machine, _, error = _run(make, engine, 16)
            assert error == ("OSError", "InputPort is read-only")

    def test_read_from_output_port_raises_identically(self):
        def make():
            devices = DeviceMap()
            devices.map(6, 1, OutputPort())
            program = Program([[Parcel(
                DataOp(OPCODES["load"], Const(6), Const(0), Reg(0)),
                None, SyncValue.BUSY)]])
            return XimdMachine(program, config=_lenient(1),
                               devices=devices)

        assert_identical(make, limit=16)
        for engine in ("fast", "specialized"):
            machine, _, error = _run(make, engine, 16)
            assert error == ("OSError", "OutputPort is write-only")

    def test_device_outside_memory_range_reachable(self):
        """Device lookup precedes the bounds check, so a port above
        the memory size must serve instead of raising — identically."""

        def make():
            words = research_config(1).memory_words
            devices = DeviceMap()
            devices.map(words + 3, 1, InputPort([(0, 9)]))
            program = Program([[Parcel(
                DataOp(OPCODES["load"], Const(words + 3), Const(0),
                       Reg(0)),
                None, SyncValue.BUSY)]])
            return XimdMachine(program, config=_lenient(1),
                               devices=devices)

        assert_identical(make, limit=16)
        machine, result, error = _run(make, "fast", 16)
        assert error is None
        assert result.register(0) == 9
        assert machine.memory.loads == 0  # device hits bypass counters

    @given(random_programs(), _port_layouts())
    @settings(max_examples=60, deadline=None)
    def test_ximd_random_device_layouts(self, program, layout):
        assert_identical(
            lambda: XimdMachine(program, config=_lenient(program.width),
                                devices=_layout_devices(layout)),
            limit=64)

    @given(random_programs(), _port_layouts())
    @settings(max_examples=40, deadline=None)
    def test_vliw_random_device_layouts(self, program, layout):
        assert_identical(
            lambda: VliwMachine(program, config=_lenient(program.width),
                                devices=_layout_devices(layout)),
            limit=64)


# ---------------------------------------------------------------------------
# SSET trackers on the fast path: deferred replay, identical end state


def _tracker_state(machine):
    """Partition now, exact world set (when present), fallback point."""
    tracker = machine.tracker
    partition = tracker.partition(machine._pc_vector())
    exact = getattr(tracker, "_exact", None)
    worlds = (frozenset(exact.worlds) if exact is not None else None)
    return (partition, worlds, getattr(tracker, "fell_back_at", "n/a"))


_TRACKER_WORKLOADS = {
    "bitcount": lambda kind: _fresh(
        XimdMachine, bitcount_total_source(), {BITCOUNT_REGS["n"]: 48},
        bitcount_memory(_BC_DATA), tracker=kind),
    "tproc": lambda kind: _fresh(
        XimdMachine, tproc_source(), _TPROC_REGS, tracker=kind),
    "minmax": lambda kind: _fresh(
        XimdMachine, minmax_source("halt"),
        {MINMAX_REGS["n"]: len(_MM_DATA)}, minmax_memory(_MM_DATA),
        tracker=kind),
}


class TestTrackerDifferential:
    @pytest.mark.parametrize("kind", [TrackerKind.EXACT,
                                      TrackerKind.HEURISTIC,
                                      TrackerKind.ADAPTIVE])
    @pytest.mark.parametrize("name", sorted(_TRACKER_WORKLOADS))
    def test_end_state_identical(self, name, kind):
        states = {}
        for engine in ("reference", "fast"):
            machine = _TRACKER_WORKLOADS[name](kind)
            result = machine.run(5_000_000, engine=engine)
            assert machine.engine_used == engine
            states[engine] = (_result_fingerprint(result),
                              _tracker_state(machine))
        assert states["fast"] == states["reference"]

    @pytest.mark.parametrize("kind", [TrackerKind.EXACT,
                                      TrackerKind.HEURISTIC])
    def test_sampled_partition_events_identical(self, kind):
        """Tier-1 sampled CycleEvent.partition and the
        PartitionChangeEvent stream must match the reference path."""
        events = {}
        for engine in ("reference", "fast"):
            obs = recording_observer(sample_every=4)
            machine = _fresh(XimdMachine, bitcount_total_source(),
                             {BITCOUNT_REGS["n"]: 48},
                             bitcount_memory(_BC_DATA),
                             tracker=kind, obs=obs)
            machine.run(5_000_000, engine=engine)
            assert machine.engine_used == engine
            events[engine] = [dataclasses.asdict(event)
                              for event in obs.sinks[0].events]
        assert events["fast"] == events["reference"]
        assert any(e.get("partition") for e in events["fast"])

    def test_tracker_with_devices_and_counters(self):
        """The Figure 12 combination: devices + tracker + tier-0
        observer, all on the fast path, telemetry identical."""
        snaps = {}
        for engine in ("reference", "fast"):
            obs = Observer()
            machine = _iosync_machine(tracker=TrackerKind.EXACT,
                                      obs=obs)
            machine.run(1_000_000, engine=engine)
            assert machine.engine_used == engine
            snaps[engine] = (_telemetry_snapshot(obs),
                             _tracker_state(machine),
                             _machine_fingerprint(machine))
        assert snaps["fast"] == snaps["reference"]

    def test_error_cycle_not_replayed(self):
        """A run that dies mid-cycle must leave the tracker advanced
        only through the last completed cycle, like the reference: the
        error cycle's (never-taken) branch back to 0 must not appear
        in the exact tracker's worlds."""

        def make():
            program = Program([[
                Parcel(DataOp(OPCODES["nop"]),
                       ControlOp(Condition.ALWAYS_T1, 1),
                       SyncValue.BUSY),
                Parcel(DataOp(OPCODES["store"], Const(1), Const(-3),
                              None),
                       ControlOp(Condition.ALWAYS_T1, 0),
                       SyncValue.BUSY),
            ]])
            return XimdMachine(program, config=_lenient(1),
                               tracker=TrackerKind.EXACT)

        states = {}
        for engine in ("reference", "fast"):
            machine, result, error = _run(make, engine, 16)
            assert result is None and error[0] == "MemoryError_"
            states[engine] = frozenset(machine.tracker._exact.worlds)
        assert states["fast"] == states["reference"] == {(1,)}


# ---------------------------------------------------------------------------
# Program container regressions (satellites of this PR)


class TestProgramRegressions:
    def test_post_init_does_not_mutate_caller_columns(self):
        """Ragged columns used to be padded in place, corrupting the
        caller's (possibly shared) lists."""
        short = [Parcel(DataOp(OPCODES["nop"]))]
        long = [Parcel(DataOp(OPCODES["nop"])),
                Parcel(DataOp(OPCODES["nop"])),
                Parcel(DataOp(OPCODES["nop"]))]
        program = Program([short, long])
        assert len(short) == 1          # caller's list untouched
        assert len(program.columns[0]) == 3
        assert program.columns[0][1:] == [None, None]
        # shared list objects must not alias each other either
        shared = [Parcel(DataOp(OPCODES["nop"]))]
        program = Program([shared, shared, long])
        program.columns[0][0] = None
        assert program.columns[1][0] is not None

    def test_label_at_first_match_wins(self):
        program = Program([[Parcel(DataOp(OPCODES["nop"]))] * 3],
                          labels={"start": 0, "alias": 0, "mid": 1})
        assert program.label_at(0) == "start"
        assert program.label_at(1) == "mid"
        assert program.label_at(2) is None

    def test_label_at_index_tracks_late_additions(self):
        """The assembler fills labels in after construction; the cached
        reverse index must notice."""
        program = Program([[Parcel(DataOp(OPCODES["nop"]))] * 3])
        assert program.label_at(2) is None
        program.labels["end"] = 2
        assert program.label_at(2) == "end"
        program.labels["other_end"] = 2
        assert program.label_at(2) == "end"   # first match still wins
