"""Deterministic fault injection (``repro.faults``).

The robustness contract: a :class:`FaultPlan` is a pure, replayable
input.  The same plan on the same machine produces bit-identical
post-fault state, an identical fault log, and — when the faulted run
ends in an error or an abort — the identical error type, message, and
diagnosis on the reference, fast, and specialized engines alike.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.faults import ALL_KINDS, FaultEvent, FaultPlan
from repro.machine import (
    MachineError,
    VliwMachine,
    XimdMachine,
    specialized_eligible,
)
from repro.obs import Observer, observed
from repro.workloads import (
    MINMAX_REGS,
    longrunner_program,
    longrunner_vliw_program,
    minmax_memory,
    minmax_source,
)

from tests.test_engine import (
    _iosync_machine,
    _machine_fingerprint,
    _result_fingerprint,
)


def _longrunner(iterations=300):
    program, registers = longrunner_program(iterations=iterations)
    machine = XimdMachine(program)
    for index, value in registers.items():
        machine.regfile.poke(index, value)
    return machine


def _run_faulted(make, engine, plan, limit):
    machine = make()
    try:
        result = machine.run(limit, engine=engine, faults=plan)
    except (MachineError, ArithmeticError, ValueError, OSError) as exc:
        return machine, None, (type(exc).__name__, str(exc))
    return machine, result, None


def assert_identical_faulted(make, plan, limit=200_000):
    """Every engine must see the identical faulted execution.

    Successful runs match on result and committed machine state; runs
    that abort or error match on exception type + message and on the
    structured abort diagnosis.  The fault log must be identical in
    content *and order* either way.
    """
    ref_machine, ref, ref_err = _run_faulted(make, "reference", plan, limit)
    engines = ["fast"]
    if specialized_eligible(make()):
        engines.append("specialized")
    for engine in engines:
        machine, result, err = _run_faulted(make, engine, plan, limit)
        assert err == ref_err, engine
        assert machine.fault_log == ref_machine.fault_log, engine
        assert machine.last_abort == ref_machine.last_abort, engine
        if ref_err is None:
            assert (_result_fingerprint(result)
                    == _result_fingerprint(ref)), engine
            assert (_machine_fingerprint(machine)
                    == _machine_fingerprint(ref_machine)), engine
            assert result.faults == ref.faults, engine


# ---------------------------------------------------------------------------
# the plan itself: deterministic, serializable, validated


class TestFaultPlan:
    def test_seeded_is_deterministic(self):
        a = FaultPlan.seeded(7, 12, ports=2)
        b = FaultPlan.seeded(7, 12, ports=2)
        assert a == b
        assert a.fingerprint() == b.fingerprint()
        assert len(a) == 12

    def test_different_seeds_differ(self):
        a = FaultPlan.seeded(7, 12)
        b = FaultPlan.seeded(8, 12)
        assert a != b
        assert a.fingerprint() != b.fingerprint()

    def test_round_trip(self):
        plan = FaultPlan.seeded(3, 9, ports=1)
        clone = FaultPlan.from_dict(plan.to_dict())
        assert clone == plan
        assert clone.fingerprint() == plan.fingerprint()

    def test_events_sorted_stably_by_cycle(self):
        plan = FaultPlan([
            FaultEvent(cycle=9, kind="reg_flip", reg=1),
            FaultEvent(cycle=3, kind="reg_flip", reg=2),
            FaultEvent(cycle=9, kind="mem_corrupt", address=4),
        ])
        assert [e.cycle for e in plan] == [3, 9, 9]
        # same-cycle events keep their listed order (stable sort)
        assert [e.kind for e in plan][1:] == ["reg_flip", "mem_corrupt"]

    def test_port_kinds_need_ports(self):
        plan = FaultPlan.seeded(5, 40, ports=0)
        assert not any(e.kind.startswith("port_") for e in plan)
        with_ports = FaultPlan.seeded(5, 40, ports=2)
        assert any(e.kind.startswith("port_") for e in with_ports)

    def test_kinds_subset(self):
        plan = FaultPlan.seeded(1, 20, kinds=["reg_flip"])
        assert {e.kind for e in plan} == {"reg_flip"}

    def test_validation(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultEvent(cycle=1, kind="gamma_ray")
        with pytest.raises(ValueError, match="cycle must be >= 0"):
            FaultEvent(cycle=-1, kind="reg_flip")
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultPlan.seeded(1, 4, kinds=["bogus"])
        with pytest.raises(ValueError, match="no fault kinds left"):
            FaultPlan.seeded(1, 4, ports=0, kinds=["port_drop"])

    def test_all_kinds_complete(self):
        assert set(ALL_KINDS) == {
            "reg_flip", "mem_corrupt", "port_drop", "port_delay",
            "ss_glitch", "spurious_wakeup"}


# ---------------------------------------------------------------------------
# three-way engine identity under faults


class TestFaultedEngineIdentity:
    def test_longrunner_seeded_plan(self):
        plan = FaultPlan.seeded(7, 12, n_registers=32)
        assert_identical_faulted(_longrunner, plan)

    def test_iosync_port_faults(self):
        plan = FaultPlan.seeded(11, 8, mean_gap=6.0, ports=2,
                                kinds=["port_drop", "port_delay",
                                       "ss_glitch"])
        assert_identical_faulted(_iosync_machine, plan)

    def test_vliw_plan_masks_sync_faults(self):
        def make():
            program, registers = longrunner_vliw_program(iterations=200)
            machine = VliwMachine(program)
            for index, value in registers.items():
                machine.regfile.poke(index, value)
            return machine

        plan = FaultPlan([
            FaultEvent(cycle=2, kind="ss_glitch", fu=1),
            FaultEvent(cycle=3, kind="spurious_wakeup", fu=0),
            FaultEvent(cycle=4, kind="reg_flip", reg=9, bit=3),
        ])
        machine, _, _ = _run_faulted(make, "reference", plan, 200_000)
        assert machine.fault_log[0]["masked"]
        assert machine.fault_log[1]["masked"]
        assert "masked" not in machine.fault_log[2]
        assert_identical_faulted(make, plan)

    @settings(max_examples=12, deadline=None)
    @given(seed=st.integers(0, 2**20), n_faults=st.integers(1, 10),
           mean_gap=st.floats(2.0, 120.0))
    def test_seeded_plans_identical_across_engines(self, seed, n_faults,
                                                   mean_gap):
        """Chaos sweep: whatever a random plan does to the longrunner —
        clean halt, wrong-answer halt, watchdog, livelock, datapath
        error — all three engines must agree exactly."""
        plan = FaultPlan.seeded(seed, n_faults, mean_gap,
                                n_registers=32)
        assert_identical_faulted(_longrunner, plan, limit=50_000)

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 2**20), n_faults=st.integers(1, 6))
    def test_seeded_port_plans_identical_across_engines(self, seed,
                                                        n_faults):
        plan = FaultPlan.seeded(seed, n_faults, mean_gap=8.0, ports=2)
        assert_identical_faulted(_iosync_machine, plan, limit=50_000)


# ---------------------------------------------------------------------------
# fault-log records and masking


def _minmax(**kwargs):
    from tests.test_engine import _MM_DATA, _fresh
    return _fresh(XimdMachine, minmax_source("halt"),
                  {MINMAX_REGS["n"]: len(_MM_DATA)},
                  minmax_memory(_MM_DATA), **kwargs)


class TestFaultRecords:
    def test_reg_flip_record(self):
        machine = _longrunner()
        plan = FaultPlan([FaultEvent(cycle=1, kind="reg_flip", reg=2,
                                     bit=5)])
        machine.run(50_000, faults=plan)
        [record] = machine.fault_log
        assert record["kind"] == "reg_flip"
        assert record["new"] == record["old"] ^ (1 << 5)

    def test_mem_corrupt_masked_on_device_address(self):
        machine = _iosync_machine()
        base = next(base for base, _end, _dev
                    in machine.memory.devices.ranges())
        plan = FaultPlan([FaultEvent(cycle=1, kind="mem_corrupt",
                                     address=base)])
        machine.run(50_000, faults=plan)
        [record] = machine.fault_log
        assert "claimed by a device" in record["masked"]

    def test_port_faults_masked_without_ports(self):
        machine = _minmax()
        plan = FaultPlan([
            FaultEvent(cycle=1, kind="port_drop"),
            FaultEvent(cycle=2, kind="port_delay", delay=5),
        ])
        machine.run(500_000, faults=plan)
        assert [r["masked"] for r in machine.fault_log] == [
            "machine has no input ports"] * 2

    def test_indices_reduced_modulo_machine_dimensions(self):
        machine = _longrunner()
        n_registers = machine.config.n_registers
        plan = FaultPlan([FaultEvent(cycle=1, kind="reg_flip",
                                     reg=n_registers + 3, bit=70)])
        machine.run(50_000, faults=plan)
        [record] = machine.fault_log
        assert record["reg"] == 3
        assert record["bit"] == 70 % 64

    def test_result_carries_only_this_runs_faults(self):
        machine = _longrunner()
        plan = FaultPlan([FaultEvent(cycle=1, kind="reg_flip", reg=2,
                                     bit=0)])
        result = machine.run(50_000, faults=plan)
        assert result.faults == tuple(machine.fault_log)
        assert len(result.faults) == 1

    def test_faults_injected_counter(self):
        obs = Observer()
        with observed(obs):
            machine = _longrunner()
        plan = FaultPlan([
            FaultEvent(cycle=1, kind="reg_flip", reg=2, bit=0),
            FaultEvent(cycle=5, kind="reg_flip", reg=2, bit=0),
        ])
        machine.run(50_000, faults=plan)
        assert obs.registry.counter("ximd.faults_injected").value == 2
