"""Hang diagnosis and graceful engine degradation.

The run driver (``repro.machine.runtime``) replaces the blind
``max_cycles`` watchdog with structured :class:`RunAbort` diagnoses —
sync deadlock and state-recurrence livelock, caught at geometric
check boundaries well before the cycle limit — and hardens
``run(engine="auto")`` so a broken tier degrades downward instead of
crashing.  Everything here must behave identically on the reference,
fast, and specialized engines.
"""

import json

import pytest

from repro.faults import FaultEvent, FaultPlan
from repro.obs.__main__ import main as obs_main
from repro.obs.html import render_dashboard
from repro.obs.report import RunReport
from repro.obs.schema import check_artifact
from repro.machine import (
    MachineError,
    RunAbort,
    SimulationLimitError,
    VliwMachine,
    XimdMachine,
    research_config,
    specialized_eligible,
)
from repro.obs import Observer, observed
from repro.workloads import longrunner_program

from tests.test_engine import PAPER_WORKLOADS, _fresh, _result_fingerprint

# Two FUs spin on each other's sync signal: FU0 leaves only when FU1
# reports DONE and vice versa, but both parcels assert BUSY forever —
# a cyclic ss-wait deadlock (the paper's synchronization hazard).
DEADLOCK = """
.width 2
spin:
| if ss1 out, spin ; nop ; busy
| if ss0 out, spin ; nop ; busy
out:
| halt ; nop
| halt ; nop
"""

# A branch loop that never halts and never changes state: textbook
# livelock for the state-digest monitor.
LIVELOCK = """
.width 1
a:
| -> b ; nop
b:
| -> a ; nop
"""


def _engines(make):
    engines = ["reference", "fast"]
    if specialized_eligible(make()):
        engines.append("specialized")
    return engines


def _abort(make, engine, limit=1_000_000, faults=None):
    machine = make()
    with pytest.raises(RunAbort) as excinfo:
        machine.run(limit, engine=engine, faults=faults)
    exc = excinfo.value
    return machine, exc


def assert_same_abort(make, limit=1_000_000, faults=None):
    """Run *make()* on every engine; demand the identical RunAbort."""
    outcomes = {}
    for engine in _engines(make):
        machine, exc = _abort(make, engine, limit, faults)
        outcomes[engine] = (str(exc), exc.kind, exc.cycle,
                            exc.diagnostics)
        assert machine.last_abort == exc.diagnostics, engine
    reference = outcomes.pop("reference")
    for engine, outcome in outcomes.items():
        assert outcome == reference, engine
    return reference


class TestDeadlockDiagnosis:
    def test_identical_on_all_engines(self):
        make = lambda: _fresh(XimdMachine, DEADLOCK)  # noqa: E731
        message, kind, cycle, diagnostics = assert_same_abort(make)
        assert kind == "deadlock"
        assert "sync deadlock" in message
        assert "all 2 active FUs blocked" in message
        assert cycle == diagnostics["cycle"]
        assert diagnostics["blocked"] == [
            {"fu": 0, "pc": 0, "cond": "ss", "blockers": [1]},
            {"fu": 1, "pc": 0, "cond": "ss", "blockers": [0]},
        ]
        assert diagnostics["pcs"] == [0, 0]
        assert diagnostics["faults_applied"] == 0

    def test_diagnosed_long_before_the_limit(self):
        machine = _fresh(XimdMachine, DEADLOCK)
        with pytest.raises(RunAbort) as excinfo:
            machine.run(10_000_000)
        assert excinfo.value.kind == "deadlock"
        assert excinfo.value.cycle <= 2 * machine.config.hang_check_start

    def test_diagnostics_are_json_ready(self):
        _machine, exc = _abort(lambda: _fresh(XimdMachine, DEADLOCK),
                               "reference")
        payload = json.loads(json.dumps(exc.diagnostics))
        assert payload["kind"] == "deadlock"
        assert payload["wait_matrix_source"] in ("counters",
                                                 "instantaneous")
        assert any(any(row) for row in payload["wait_matrix"])
        assert "critical_path" in payload

    def test_abort_is_a_simulation_limit_error(self):
        """Existing callers catch SimulationLimitError; the richer
        diagnosis must not slip past them."""
        machine = _fresh(XimdMachine, DEADLOCK)
        with pytest.raises(SimulationLimitError):
            machine.run(1_000_000)


class TestLivelockDiagnosis:
    def test_identical_on_all_engines(self):
        make = lambda: _fresh(XimdMachine, LIVELOCK)  # noqa: E731
        message, kind, _cycle, diagnostics = assert_same_abort(make)
        assert kind == "livelock"
        assert "state recurred" in message
        assert diagnostics["period"] >= 1

    def test_vliw_livelock(self):
        make = lambda: _fresh(VliwMachine, LIVELOCK)  # noqa: E731
        _message, kind, _cycle, diagnostics = assert_same_abort(make)
        assert kind == "livelock"
        assert len(diagnostics["pcs"]) == 1

    def test_pending_faults_defer_the_diagnosis(self):
        """An undelivered fault event could still unstick the loop, so
        the monitor must not claim livelock while one is pending — the
        plain watchdog fires at the limit instead."""
        plan = FaultPlan([FaultEvent(cycle=100_000, kind="reg_flip",
                                     reg=1, bit=0)])
        make = lambda: _fresh(XimdMachine, LIVELOCK)  # noqa: E731
        _message, kind, cycle, _diag = assert_same_abort(
            make, limit=5_000, faults=plan)
        assert kind == "watchdog"
        assert cycle == 5_000

    def test_diagnosed_after_faults_applied(self):
        """Once every event has landed the monitor resumes; the abort
        reports how many faults were injected first."""
        plan = FaultPlan([FaultEvent(cycle=10, kind="reg_flip",
                                     reg=1, bit=0)])
        make = lambda: _fresh(XimdMachine, LIVELOCK)  # noqa: E731
        _message, kind, _cycle, diagnostics = assert_same_abort(
            make, faults=plan)
        assert kind == "livelock"
        assert diagnostics["faults_applied"] == 1


class TestWatchdogCompatibility:
    def test_small_limit_keeps_the_legacy_message(self):
        """Limits below the first check boundary never reach the
        monitor: the watchdog fires with the historical message."""
        machine = _fresh(XimdMachine, LIVELOCK)
        with pytest.raises(SimulationLimitError,
                           match="did not halt within 50 cycles"):
            machine.run(50)
        assert machine.last_abort["kind"] == "watchdog"

    def test_hang_detection_off_restores_blind_watchdog(self):
        config = research_config(1, hang_detection=False)
        machine = _fresh(XimdMachine, LIVELOCK, config=config)
        with pytest.raises(RunAbort) as excinfo:
            machine.run(10_000)
        assert excinfo.value.kind == "watchdog"
        assert excinfo.value.cycle == 10_000

    def test_halting_programs_are_untouched(self):
        """The monitor must never fire on a program that halts."""
        result = PAPER_WORKLOADS["minmax-ximd"]().run(5_000_000)
        assert result.halted


class TestEngineDegradation:
    def _minmax(self, obs=None):
        if obs is None:
            return PAPER_WORKLOADS["minmax-ximd"]()
        with observed(obs):
            return PAPER_WORKLOADS["minmax-ximd"]()

    def test_healthy_run_has_no_fallback(self):
        machine = self._minmax()
        result = machine.run(5_000_000)
        assert result.fallback_reason is None
        assert machine.last_fallback is None

    def test_codegen_failure_degrades_to_fast(self, monkeypatch):
        def explode(machine, kind):
            raise RuntimeError("synthetic codegen explosion")

        monkeypatch.setattr("repro.machine.codegen.specialized_runner",
                            explode)
        obs = Observer()
        machine = self._minmax(obs)
        result = machine.run(5_000_000, engine="auto")
        assert machine.engine_used == "fast"
        assert result.fallback_reason == (
            "specialized codegen failed (RuntimeError: synthetic "
            "codegen explosion); degraded to fast")
        assert obs.registry.counter("ximd.engine_fallback").value == 1
        # the degraded run still computes the right answer
        reference = PAPER_WORKLOADS["minmax-ximd"]().run(
            5_000_000, engine="reference")
        assert _result_fingerprint(result) == _result_fingerprint(
            reference)

    def test_decode_failure_degrades_to_reference(self, monkeypatch):
        def explode(*args, **kwargs):
            raise ValueError("synthetic decoder failure")

        monkeypatch.setattr("repro.machine.codegen.specialized_runner",
                            explode)
        monkeypatch.setattr("repro.machine.codegen._decoded_for",
                            explode)
        machine = self._minmax()
        result = machine.run(5_000_000, engine="auto")
        assert machine.engine_used == "reference"
        assert "degraded to fast" in result.fallback_reason
        assert "degraded to reference" in result.fallback_reason
        assert result.halted

    def test_explicit_specialized_still_raises(self, monkeypatch):
        def explode(machine, kind):
            raise RuntimeError("synthetic codegen explosion")

        monkeypatch.setattr("repro.machine.codegen.specialized_runner",
                            explode)
        machine = self._minmax()
        with pytest.raises(MachineError,
                           match="specialized engine failed to build"):
            machine.run(5_000_000, engine="specialized")

    def test_explicit_fast_still_raises(self, monkeypatch):
        def explode(*args, **kwargs):
            raise ValueError("synthetic decoder failure")

        monkeypatch.setattr("repro.machine.codegen._decoded_for",
                            explode)
        machine = self._minmax()
        with pytest.raises(MachineError,
                           match="fast engine failed to decode"):
            machine.run(5_000_000, engine="fast")

    def test_degraded_longrunner_matches_reference(self, monkeypatch):
        """Fallback composes with the segmented driver: a degraded run
        with hang checks enabled is still bit-identical."""
        def explode(machine, kind):
            raise RuntimeError("boom")

        monkeypatch.setattr("repro.machine.codegen.specialized_runner",
                            explode)

        def make():
            program, registers = longrunner_program(iterations=300)
            machine = XimdMachine(program)
            for index, value in registers.items():
                machine.regfile.poke(index, value)
            return machine

        degraded = make().run(50_000, engine="auto")
        reference = make().run(50_000, engine="reference")
        assert _result_fingerprint(degraded) == _result_fingerprint(
            reference)


class TestReportSurfaces:
    """Schema v4: faults and abort ride through RunReport, the text
    renderer, the dashboard, and the ``faults`` CLI subcommand."""

    def _aborted_report(self):
        obs = Observer()
        with observed(obs):
            machine = _fresh(XimdMachine, DEADLOCK)
        with pytest.raises(RunAbort):
            machine.run(1_000_000)
        return RunReport.from_machine(machine, obs.registry)

    def _faulted_report(self):
        obs = Observer()
        with observed(obs):
            program, registers = longrunner_program(iterations=300)
            machine = XimdMachine(program)
            for index, value in registers.items():
                machine.regfile.poke(index, value)
        machine.run(200_000,
                    faults=FaultPlan.seeded(7, 12, n_registers=32))
        return RunReport.from_machine(machine, obs.registry)

    def test_report_carries_abort_diagnosis(self):
        report = self._aborted_report()
        payload = check_artifact(report.to_dict(), "report")
        assert payload["abort"]["kind"] == "deadlock"
        assert payload["abort"]["blocked"]
        text = report.render_text()
        cycle = payload["abort"]["cycle"]
        assert "run aborted" in text
        assert f"deadlock at cycle {cycle}" in text
        html = render_dashboard(payload)
        assert "critical wait" in html.lower()

    def test_report_carries_fault_log(self):
        report = self._faulted_report()
        payload = check_artifact(report.to_dict(), "report")
        assert len(payload["faults"]) == 12
        assert payload["abort"] == {}
        assert "faults injected" in report.render_text()
        assert "ss_glitch" in render_dashboard(payload)

    def test_faults_cli(self, tmp_path, capsys):
        path = tmp_path / "abort.json"
        self._aborted_report().write_json(path)
        assert obs_main(["faults", str(path)]) == 0
        out = capsys.readouterr().out
        assert "run aborted: deadlock at cycle" in out
        assert "critical wait chain" in out
        assert obs_main(["faults", str(path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["abort"]["kind"] == "deadlock"

    def test_faults_cli_on_clean_faulted_run(self, tmp_path, capsys):
        path = tmp_path / "clean.json"
        self._faulted_report().write_json(path)
        assert obs_main(["faults", str(path)]) == 0
        out = capsys.readouterr().out
        assert "12 fault(s) injected" in out
        assert "masked" in out
