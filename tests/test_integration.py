"""Cross-module integration and property tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.asm import assemble, disassemble
from repro.compiler import compile_ir, compile_xc, compose_threads, lower_unit, parse_xc
from repro.isa.encoding import decode_column, encode_column
from repro.machine import (
    TrackerKind,
    VliwMachine,
    XimdMachine,
    is_valid_partition,
    refines,
    run_ximd,
)
from repro.models import duplicate_control
from repro.workloads import (
    BASES,
    KERNELS,
    branchy_loop_sources,
    ll1_reference,
    ll3_reference,
    ll7_reference,
    livermore12_reference,
    memory_image,
    random_ints,
)


class TestLivermoreKernels:
    """Every kernel, compiled through the full pipeline, matches its
    oracle, with and without software pipelining."""

    N = 24

    def _arrays(self):
        n = self.N
        return {
            "X": random_ints(n + 12, seed=10),
            "Y": random_ints(n + 12, seed=11),
            "Z": random_ints(n + 12, seed=12),
            "U": random_ints(n + 12, seed=13),
        }

    def _run(self, name, pipeline, scalars):
        source, inputs, scalar_names = KERNELS[name]
        arrays = self._arrays()
        cf = compile_xc(source, width=8, pipeline=pipeline)
        machine = XimdMachine(cf.program)
        for scalar_name, value in scalars.items():
            machine.regfile.poke(cf.register(scalar_name), value)
        for address, value in memory_image(
                {k: arrays[k] for k in inputs}).items():
            machine.memory.poke(address, value)
        machine.run(500_000)
        return machine, cf, arrays

    @pytest.mark.parametrize("pipeline", [False, True])
    def test_ll1(self, pipeline):
        machine, _, arrays = self._run(
            "ll1", pipeline, {"n": self.N, "q": 5, "r": 3, "t": 2})
        got = [0] + [machine.memory.peek(BASES["X"] + k)
                     for k in range(1, self.N + 1)]
        assert got == ll1_reference(arrays["Y"], arrays["Z"],
                                    self.N, 5, 3, 2)

    @pytest.mark.parametrize("pipeline", [False, True])
    def test_ll3(self, pipeline):
        machine, cf, arrays = self._run("ll3", pipeline, {"n": self.N})
        assert machine.regfile.peek(cf.register("__ret")) == \
            ll3_reference(arrays["Z"], arrays["X"], self.N)

    @pytest.mark.parametrize("pipeline", [False, True])
    def test_ll7(self, pipeline):
        machine, _, arrays = self._run(
            "ll7", pipeline, {"n": self.N, "r": 3, "t": 2})
        got = [0] + [machine.memory.peek(BASES["X"] + k)
                     for k in range(1, self.N + 1)]
        assert got == ll7_reference(arrays["U"], arrays["Y"],
                                    arrays["Z"], self.N, 3, 2)

    @pytest.mark.parametrize("pipeline", [False, True])
    def test_ll12(self, pipeline):
        machine, _, arrays = self._run("ll12", pipeline, {"n": self.N})
        got = [0] + [machine.memory.peek(BASES["X"] + k)
                     for k in range(1, self.N + 1)]
        assert got == livermore12_reference(arrays["Y"], self.N)


class TestCompiledProgramProperties:
    def test_compiled_program_survives_binary_encoding(self):
        cf = compile_xc(KERNELS["ll12"][0], width=4)
        for fu in range(cf.program.width):
            column = [p for p in cf.program.columns[fu] if p is not None]
            assert decode_column(encode_column(column)) == column

    def test_compiled_program_survives_disassembly(self):
        cf = compile_xc("func f(a, b) { return a * b + 7; }", width=2)
        second = assemble(disassemble(cf.program))
        registers = {cf.register("a"): 6, cf.register("b"): 7}
        r1 = run_ximd(cf.program, registers=registers)
        r2 = run_ximd(second, registers=registers)
        assert r1.registers == r2.registers
        assert r1.cycles == r2.cycles

    def test_duplicate_control_is_identity_on_compiled_code(self):
        """Compiled code already carries duplicated control fields, so
        the embedding changes nothing observable."""
        cf = compile_xc("func f(a) { return a + a * 3; }", width=4)
        registers = {cf.register("a"): 5}
        r1 = run_ximd(cf.program, registers=registers)
        r2 = run_ximd(duplicate_control(cf.program), registers=registers)
        assert r1.registers == r2.registers and r1.cycles == r2.cycles


class TestMultiThreadIntegration:
    @pytest.mark.parametrize("n_threads,width", [(2, 4), (4, 2), (2, 2)])
    def test_generated_thread_fleets(self, n_threads, width):
        sources, oracles, bases = branchy_loop_sources(
            n_threads, seed=n_threads * 10)
        threads = [
            compile_ir(lower_unit(parse_xc(src))[f"loop{i}"], width)
            for i, src in enumerate(sources)
        ]
        program, placements = compose_threads(threads, total_width=8)
        machine = XimdMachine(program, trace=True,
                              tracker=TrackerKind.ADAPTIVE)
        lengths = [5 + 3 * i for i in range(n_threads)]
        datas = []
        for i, base in enumerate(bases):
            values = random_ints(20, seed=50 + i, lo=0, hi=500)
            datas.append(values)
            for k in range(1, 20):
                machine.memory.poke(base + k, values[k])
            machine.regfile.poke(
                placements[i].register(threads[i], "n"), lengths[i])
        machine.run(200_000)
        for i in range(n_threads):
            got = machine.regfile.peek(
                placements[i].register(threads[i], "__ret"))
            assert got == oracles[i](datas[i], lengths[i])
        # partition invariants across the whole run
        total = sum(t.width for t in threads)
        for record in machine.trace:
            assert is_valid_partition(record.partition, 8)
        # at least one cycle ran all threads as separate streams
        assert any(len(r.partition) >= n_threads
                   for r in machine.trace)

    def test_thread_partition_refines_placement(self):
        """No SSET ever spans two different threads mid-run (they only
        merge at the final barrier)."""
        sources, _, bases = branchy_loop_sources(2, seed=9)
        threads = [
            compile_ir(lower_unit(parse_xc(src))[f"loop{i}"], 2)
            for i, src in enumerate(sources)
        ]
        program, placements = compose_threads(threads, total_width=4)
        machine = XimdMachine(program, trace=True,
                              tracker=TrackerKind.EXACT)
        for i, base in enumerate(bases):
            for k in range(1, 12):
                machine.memory.poke(base + k, k)
            machine.regfile.poke(
                placements[i].register(threads[i], "n"), 6 + 4 * i)
        machine.run(100_000)
        thread_partition = ((0, 1), (2, 3))
        for record in machine.trace[:-3]:  # before the final join
            if len(record.partition) >= 2:
                assert refines(record.partition,
                               thread_partition) or \
                    record.partition == ((0, 1, 2, 3),)


class TestXimdNeverSlowerThanVliw:
    """For identical VLIW-mode programs the two machines tie exactly;
    XIMD wins only by using extra streams (section 2.1's equivalence)."""

    @given(st.integers(min_value=0, max_value=50))
    @settings(max_examples=15, deadline=None)
    def test_vliw_mode_tie(self, seed):
        from repro.workloads import random_dag_source
        source, _ = random_dag_source(10, n_vars=4, seed=seed)
        cf = compile_xc(source, width=4)
        registers = {cf.register(f"v{i}"): i * 3 - 5 for i in range(4)}
        rx = run_ximd(cf.program, registers=registers)
        rv = VliwMachine(cf.program)
        for index, value in registers.items():
            rv.regfile.poke(index, value)
        result_v = rv.run(10_000)
        assert rx.cycles == result_v.cycles
        assert rx.registers == result_v.registers
