"""Tests for the Figure 12 dual-process non-blocking synchronization."""

import pytest

from repro.asm import assemble
from repro.machine import TrackerKind, XimdMachine
from repro.workloads import (
    iosync_memory_source,
    iosync_reference,
    iosync_sync_source,
    make_devices,
)

P1_ARRIVALS = [(2, 101), (8, 102), (30, 103)]
P2_ARRIVALS = [(15, 201), (18, 202), (22, 203)]


def run_iosync(source, p1=P1_ARRIVALS, p2=P2_ARRIVALS, **kw):
    devices, in1, in2, out1, out2 = make_devices(p1, p2)
    machine = XimdMachine(assemble(source), devices=devices, **kw)
    result = machine.run(100_000)
    return result, in1, in2, out1, out2


class TestSyncBitVersion:
    def test_values_cross_between_processes(self):
        result, _, _, out1, out2 = run_iosync(iosync_sync_source())
        expected1, expected2 = iosync_reference(
            [v for _, v in P1_ARRIVALS], [v for _, v in P2_ARRIVALS])
        assert out1.values == expected1   # P1 writes x, y, z
        assert out2.values == expected2   # P2 writes a, b, c

    def test_writes_in_order(self):
        _, _, _, out1, out2 = run_iosync(iosync_sync_source())
        cycles1 = [c for c, _ in out1.writes]
        cycles2 = [c for c, _ in out2.writes]
        assert cycles1 == sorted(cycles1)
        assert cycles2 == sorted(cycles2)

    def test_nonblocking_producer(self):
        """Paper scenario: a arrives early, x late.  Process 1 keeps
        polling b and c while Process 2 waits; once Process 2 has x it
        finds a immediately available."""
        p1 = [(2, 101), (4, 102), (6, 103)]     # a, b, c arrive early
        p2 = [(60, 201), (62, 202), (64, 203)]  # x, y, z very late
        result, in1, _, _, out2 = run_iosync(
            iosync_sync_source(), p1=p1, p2=p2)
        # all three of P1's values were consumed long before x arrived
        # (the producer was never blocked by the consumer)
        write_a_cycle = out2.writes[0][0]
        assert write_a_cycle >= 60          # had to wait for x
        assert in1.delivered == 3
        # and P2 got a within a few cycles of acquiring x
        assert write_a_cycle <= 60 + 8

    def test_two_processes_visible_in_partition(self):
        devices, *_ = make_devices(P1_ARRIVALS, P2_ARRIVALS)
        machine = XimdMachine(assemble(iosync_sync_source()),
                              devices=devices, trace=True,
                              tracker=TrackerKind.HEURISTIC)
        machine.run(100_000)
        sizes = {len(r.partition) for r in machine.trace}
        assert 2 in sizes  # two concurrent streams mid-run


class TestMemoryFlagBaseline:
    def test_same_functional_result(self):
        result, _, _, out1, out2 = run_iosync(iosync_memory_source())
        expected1, expected2 = iosync_reference(
            [v for _, v in P1_ARRIVALS], [v for _, v in P2_ARRIVALS])
        assert out1.values == expected1
        assert out2.values == expected2

    def test_sync_bits_beat_memory_flags(self):
        """'We will implement them using the XIMD synchronization bits
        rather than through register or memory based flags.  This will
        result in increased performance.'"""
        sync_result, *_ = run_iosync(iosync_sync_source())
        flag_result, *_ = run_iosync(iosync_memory_source())
        assert sync_result.cycles < flag_result.cycles

    def test_advantage_grows_with_handoff_pressure(self):
        # when ports are instantly ready, the handoff cost dominates
        p1 = [(0, 11), (0, 12), (0, 13)]
        p2 = [(0, 21), (0, 22), (0, 23)]
        sync_result, *_ = run_iosync(iosync_sync_source(), p1=p1, p2=p2)
        flag_result, *_ = run_iosync(iosync_memory_source(), p1=p1, p2=p2)
        assert sync_result.cycles < flag_result.cycles


class TestPortEdgeCases:
    def test_slow_first_arrival(self):
        p1 = [(50, 1), (51, 2), (52, 3)]
        result, in1, *_ = run_iosync(iosync_sync_source(), p1=p1)
        assert result.halted
        assert in1.delivered == 3

    def test_everything_instant(self):
        p1 = [(0, 1), (0, 2), (0, 3)]
        p2 = [(0, 4), (0, 5), (0, 6)]
        result, _, _, out1, out2 = run_iosync(
            iosync_sync_source(), p1=p1, p2=p2)
        assert out1.values == [4, 5, 6]
        assert out2.values == [1, 2, 3]
