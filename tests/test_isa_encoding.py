"""Tests for repro.isa.encoding: binary parcel round-trips."""

import pytest
from hypothesis import given, strategies as st

from repro.isa import (
    ALL_MNEMONICS,
    Condition,
    Const,
    ControlOp,
    DataOp,
    EncodingError,
    MAXINT,
    MININT,
    OPCODES,
    OpKind,
    Parcel,
    Reg,
    SyncValue,
    goto,
    lookup,
)
from repro.isa.encoding import (
    PARCEL_BITS,
    PARCEL_BYTES,
    decode_column,
    decode_parcel,
    decode_parcel_bytes,
    encode_column,
    encode_parcel,
    encode_parcel_bytes,
)

# ---- strategies -----------------------------------------------------------

regs = st.integers(min_value=0, max_value=255).map(Reg)
int_consts = st.integers(min_value=MININT, max_value=MAXINT).map(Const)
operands = st.one_of(regs, int_consts)
targets = st.integers(min_value=0, max_value=0xFFFF)
fu_index = st.integers(min_value=0, max_value=7)


@st.composite
def data_ops(draw):
    mnemonic = draw(st.sampled_from(ALL_MNEMONICS))
    opcode = OPCODES[mnemonic]
    if opcode.kind is OpKind.NOP:
        return DataOp(opcode)
    if opcode.is_float:
        src = st.one_of(regs, st.floats(
            allow_nan=False, allow_infinity=False,
            width=32).map(Const))
    else:
        src = operands
    a, b = draw(src), draw(src)
    if opcode.writes_register:
        return DataOp(opcode, a, b, draw(regs))
    return DataOp(opcode, a, b)


@st.composite
def control_ops(draw):
    condition = draw(st.sampled_from(list(Condition)))
    t1 = draw(targets)
    if condition.is_unconditional:
        return ControlOp(Condition.ALWAYS_T1, t1)
    t2 = draw(targets)
    index = draw(fu_index) if condition.needs_index else None
    mask = None
    if condition in (Condition.ALL_SS_DONE, Condition.ANY_SS_DONE):
        if draw(st.booleans()):
            mask = tuple(draw(st.sets(fu_index, min_size=1, max_size=8)))
    return ControlOp(condition, t1, t2, index, mask)


@st.composite
def parcels(draw):
    control = draw(st.one_of(st.none(), control_ops()))
    sync = draw(st.sampled_from([SyncValue.BUSY, SyncValue.DONE]))
    return Parcel(draw(data_ops()), control, sync)


class TestRoundTrip:
    @given(parcels())
    def test_parcel_roundtrip(self, parcel):
        assert decode_parcel(encode_parcel(parcel)) == parcel

    @given(parcels())
    def test_bytes_roundtrip(self, parcel):
        blob = encode_parcel_bytes(parcel)
        assert len(blob) == PARCEL_BYTES
        assert decode_parcel_bytes(blob) == parcel

    @given(st.lists(parcels(), max_size=8))
    def test_column_roundtrip(self, column):
        assert decode_column(encode_column(column)) == column

    @given(parcels())
    def test_word_fits_declared_width(self, parcel):
        assert encode_parcel(parcel) < (1 << PARCEL_BITS)

    def test_float_constant_quantizes_to_float32(self):
        op = DataOp(lookup("fadd"), Const(0.1), Const(2.0), Reg(0))
        parcel = Parcel(op, goto(0))
        decoded = decode_parcel(encode_parcel(parcel))
        import struct
        expected = struct.unpack("<f", struct.pack("<f", 0.1))[0]
        assert decoded.data.srca.value == expected


class TestValidation:
    def test_target_out_of_range(self):
        with pytest.raises(EncodingError):
            encode_parcel(Parcel(control=goto(1 << 16)))

    def test_mask_fu_out_of_range(self):
        control = ControlOp(Condition.ALL_SS_DONE, 0, 1, mask=(9,))
        with pytest.raises(EncodingError):
            encode_parcel(Parcel(control=control))

    def test_decode_rejects_oversized_word(self):
        with pytest.raises(EncodingError):
            decode_parcel(1 << PARCEL_BITS)

    def test_decode_rejects_negative(self):
        with pytest.raises(EncodingError):
            decode_parcel(-1)

    def test_decode_bytes_wrong_length(self):
        with pytest.raises(EncodingError):
            decode_parcel_bytes(b"\x00")

    def test_decode_column_bad_length(self):
        with pytest.raises(EncodingError):
            decode_column(b"\x00" * (PARCEL_BYTES + 1))

    def test_empty_parcel_is_distinct_from_halting_nop(self):
        halt = Parcel()  # control None
        encoded = decode_parcel(encode_parcel(halt))
        assert encoded.control is None
