"""Tests for repro.isa.instruction: parcels and their validation."""

import pytest

from repro.isa import (
    Condition,
    Const,
    ControlOp,
    DATA_NOP,
    DataOp,
    OperandError,
    Parcel,
    Reg,
    SyncValue,
    WideInstruction,
    goto,
    lookup,
)


def iadd(a, b, d):
    return DataOp(lookup("iadd"), a, b, d)


class TestDataOp:
    def test_arith_roundtrip(self):
        op = iadd(Reg(1), Const(2), Reg(3))
        assert op.sources() == (Reg(1), Const(2))
        assert op.source_registers() == (Reg(1),)
        assert str(op) == "iadd r1,#2,r3"

    def test_nop_takes_no_operands(self):
        assert DATA_NOP.is_nop
        with pytest.raises(OperandError):
            DataOp(lookup("nop"), Reg(0))

    def test_arith_requires_dest(self):
        with pytest.raises(OperandError):
            DataOp(lookup("iadd"), Reg(0), Reg(1))

    def test_compare_rejects_dest(self):
        with pytest.raises(OperandError):
            DataOp(lookup("lt"), Reg(0), Reg(1), Reg(2))

    def test_compare_without_dest_ok(self):
        op = DataOp(lookup("lt"), Reg(0), Const(5))
        assert op.dest is None

    def test_store_shape(self):
        op = DataOp(lookup("store"), Reg(1), Reg(2))
        assert op.dest is None

    def test_dest_must_be_register(self):
        with pytest.raises(OperandError):
            DataOp(lookup("iadd"), Reg(0), Reg(1), Const(3))

    def test_constant_type_validation(self):
        with pytest.raises(OperandError):
            Const("five")
        with pytest.raises(OperandError):
            Const(True)

    def test_register_range_validation(self):
        with pytest.raises(OperandError):
            Reg(256)
        with pytest.raises(OperandError):
            Reg(-1)


class TestControlOp:
    def test_goto(self):
        op = goto(5)
        assert op.is_unconditional
        assert op.possible_targets() == (5,)
        assert op.taken_target == 5

    def test_conditional_requires_two_targets(self):
        with pytest.raises(OperandError):
            ControlOp(Condition.CC_TRUE, 1, index=0)

    def test_unconditional_rejects_second_target(self):
        with pytest.raises(OperandError):
            ControlOp(Condition.ALWAYS_T1, 1, 2)

    def test_cc_requires_index(self):
        with pytest.raises(OperandError):
            ControlOp(Condition.CC_TRUE, 1, 2)

    def test_goto_rejects_index(self):
        with pytest.raises(OperandError):
            ControlOp(Condition.ALWAYS_T1, 1, index=3)

    def test_mask_only_for_reductions(self):
        with pytest.raises(OperandError):
            ControlOp(Condition.CC_TRUE, 1, 2, index=0, mask=(0, 1))

    def test_mask_normalized(self):
        op = ControlOp(Condition.ALL_SS_DONE, 1, 2, mask=(3, 1, 1))
        assert op.mask == (1, 3)

    def test_possible_targets_dedup(self):
        op = ControlOp(Condition.CC_TRUE, 7, 7, index=0)
        assert op.possible_targets() == (7,)

    def test_branch_key_distinguishes_conditions(self):
        a = ControlOp(Condition.CC_TRUE, 1, 2, index=0)
        b = ControlOp(Condition.CC_TRUE, 1, 2, index=1)
        assert a.branch_key() != b.branch_key()

    def test_branch_key_equal_for_equal_ops(self):
        a = ControlOp(Condition.ALL_SS_DONE, 4, 3)
        b = ControlOp(Condition.ALL_SS_DONE, 4, 3)
        assert a.branch_key() == b.branch_key()

    def test_uses_sync(self):
        assert ControlOp(Condition.SS_DONE, 1, 2, index=0).condition.uses_sync
        assert not goto(1).condition.uses_sync


class TestParcel:
    def test_default_is_halt_nop(self):
        parcel = Parcel()
        assert parcel.data.is_nop
        assert parcel.control is None
        assert parcel.sync is SyncValue.BUSY

    def test_with_control(self):
        parcel = Parcel(sync=SyncValue.DONE)
        updated = parcel.with_control(goto(3))
        assert updated.control == goto(3)
        assert updated.sync is SyncValue.DONE
        assert parcel.control is None  # original unchanged

    def test_str_mentions_sync(self):
        assert "DONE" in str(Parcel(sync=SyncValue.DONE))


class TestWideInstruction:
    def test_indexing_and_width(self):
        parcels = [Parcel(), Parcel(sync=SyncValue.DONE)]
        wide = WideInstruction(parcels)
        assert wide.width == 2
        assert wide[1].sync is SyncValue.DONE
        assert list(wide) == list(parcels)
