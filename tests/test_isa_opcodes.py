"""Tests for repro.isa.opcodes: the XIMD-1 data-operation semantics."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.isa import (
    MAXINT,
    MININT,
    OPCODES,
    OpKind,
    UnknownOpcodeError,
    instruction_set_table,
    lookup,
    opcodes_of_kind,
    to_unsigned,
    wrap_int,
)

i32 = st.integers(min_value=MININT, max_value=MAXINT)


class TestTable:
    def test_figure7_opcodes_present(self):
        # the example instructions of Figure 7
        for mnemonic in ("iadd", "isub", "imult", "idiv", "load", "store"):
            assert mnemonic in OPCODES

    def test_common_compare_ops_present(self):
        for mnemonic in ("eq", "ne", "lt", "le", "gt", "ge"):
            assert OPCODES[mnemonic].kind is OpKind.COMPARE

    def test_float_ops_present(self):
        for mnemonic in ("fadd", "fsub", "fmult", "fdiv", "flt"):
            assert OPCODES[mnemonic].is_float

    def test_lookup_unknown_raises(self):
        with pytest.raises(UnknownOpcodeError):
            lookup("frobnicate")

    def test_opcodes_of_kind_partition(self):
        total = sum(len(opcodes_of_kind(kind)) for kind in OpKind)
        assert total == len(OPCODES)

    def test_table_renders_every_mnemonic(self):
        table = instruction_set_table()
        for mnemonic in OPCODES:
            assert mnemonic in table

    def test_properties(self):
        assert OPCODES["eq"].sets_condition_code
        assert not OPCODES["iadd"].sets_condition_code
        assert OPCODES["load"].writes_register
        assert not OPCODES["store"].writes_register
        assert OPCODES["nop"].num_sources == 0
        assert OPCODES["iadd"].num_sources == 2


class TestIntegerArithmetic:
    def test_iadd(self):
        assert OPCODES["iadd"].semantics(2, 3) == 5

    def test_iadd_wraps(self):
        assert OPCODES["iadd"].semantics(MAXINT, 1) == MININT

    def test_isub(self):
        assert OPCODES["isub"].semantics(2, 5) == -3

    def test_imult_wraps(self):
        assert OPCODES["imult"].semantics(1 << 16, 1 << 16) == 0

    def test_idiv_truncates_toward_zero(self):
        assert OPCODES["idiv"].semantics(7, 2) == 3
        assert OPCODES["idiv"].semantics(-7, 2) == -3
        assert OPCODES["idiv"].semantics(7, -2) == -3

    def test_idiv_by_zero_is_zero(self):
        assert OPCODES["idiv"].semantics(42, 0) == 0

    def test_imod_sign_follows_dividend(self):
        assert OPCODES["imod"].semantics(7, 3) == 1
        assert OPCODES["imod"].semantics(-7, 3) == -1

    def test_imod_by_zero_is_zero(self):
        assert OPCODES["imod"].semantics(5, 0) == 0

    def test_imin_imax(self):
        assert OPCODES["imin"].semantics(-3, 4) == -3
        assert OPCODES["imax"].semantics(-3, 4) == 4

    @given(i32, i32)
    def test_div_mod_identity(self, a, b):
        q = OPCODES["idiv"].semantics(a, b)
        r = OPCODES["imod"].semantics(a, b)
        if b != 0:
            assert wrap_int(q * b + r) == a

    @given(i32, i32)
    def test_results_in_range(self, a, b):
        for mnemonic in ("iadd", "isub", "imult", "idiv", "and", "or",
                         "xor", "shl", "shr", "sar"):
            result = OPCODES[mnemonic].semantics(a, b)
            assert MININT <= result <= MAXINT


class TestLogical:
    def test_and_on_bit_patterns(self):
        assert OPCODES["and"].semantics(-1, 0x0F) == 0x0F

    def test_or(self):
        assert OPCODES["or"].semantics(0xF0, 0x0F) == 0xFF

    def test_xor_self_is_zero(self):
        assert OPCODES["xor"].semantics(-123, -123) == 0

    def test_andn(self):
        assert OPCODES["andn"].semantics(0xFF, 0x0F) == 0xF0

    def test_shl(self):
        assert OPCODES["shl"].semantics(1, 4) == 16

    def test_shl_overflow_wraps(self):
        assert OPCODES["shl"].semantics(1, 31) == MININT

    def test_shr_is_logical(self):
        # BITCOUNT1 relies on logical shift terminating for negatives
        assert OPCODES["shr"].semantics(-1, 1) == 0x7FFFFFFF

    def test_sar_is_arithmetic(self):
        assert OPCODES["sar"].semantics(-8, 1) == -4

    def test_shift_counts_mask_to_5_bits(self):
        assert OPCODES["shr"].semantics(16, 36) == 1  # 36 & 31 == 4

    @given(i32)
    def test_shr_loop_terminates(self, value):
        # the BITCOUNT1 inner-loop invariant: repeated shr reaches zero
        count = 0
        while value != 0:
            value = OPCODES["shr"].semantics(value, 1)
            count += 1
            assert count <= 32


class TestCompares:
    def test_eq(self):
        assert OPCODES["eq"].semantics(3, 3) is True
        assert OPCODES["eq"].semantics(3, 4) is False

    def test_lt_signed(self):
        assert OPCODES["lt"].semantics(MININT, 0) is True

    @given(i32, i32)
    def test_compare_trichotomy(self, a, b):
        lt = OPCODES["lt"].semantics(a, b)
        eq = OPCODES["eq"].semantics(a, b)
        gt = OPCODES["gt"].semantics(a, b)
        assert [lt, eq, gt].count(True) == 1

    @given(i32, i32)
    def test_le_ge_consistency(self, a, b):
        assert OPCODES["le"].semantics(a, b) == (
            OPCODES["lt"].semantics(a, b) or OPCODES["eq"].semantics(a, b))
        assert OPCODES["ge"].semantics(a, b) == \
            OPCODES["le"].semantics(b, a)


class TestFloat:
    def test_fadd(self):
        assert OPCODES["fadd"].semantics(1.5, 2.25) == 3.75

    def test_fdiv_by_zero_is_inf(self):
        assert math.isinf(OPCODES["fdiv"].semantics(1.0, 0.0))

    def test_fdiv_zero_by_zero_is_nan(self):
        assert math.isnan(OPCODES["fdiv"].semantics(0.0, 0.0))

    def test_conversions(self):
        assert OPCODES["itof"].semantics(3, 0) == 3.0
        assert OPCODES["ftoi"].semantics(3.9, 0) == 3
        assert OPCODES["ftoi"].semantics(-3.9, 0) == -3

    def test_float_compares(self):
        assert OPCODES["flt"].semantics(1.0, 2.0) is True
        assert OPCODES["fge"].semantics(2.0, 2.0) is True
