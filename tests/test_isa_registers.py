"""Tests for repro.isa.registers: 32-bit wrapping and register names."""

import pytest
from hypothesis import given, strategies as st

from repro.isa import MAXINT, MININT, NUM_REGISTERS, to_unsigned, wrap_int
from repro.isa.registers import parse_register_name, register_name


class TestWrapInt:
    def test_identity_in_range(self):
        for value in (0, 1, -1, 17, MAXINT, MININT):
            assert wrap_int(value) == value

    def test_overflow_wraps_to_minint(self):
        assert wrap_int(MAXINT + 1) == MININT

    def test_underflow_wraps_to_maxint(self):
        assert wrap_int(MININT - 1) == MAXINT

    def test_large_positive(self):
        assert wrap_int(1 << 32) == 0

    def test_large_negative(self):
        assert wrap_int(-(1 << 32)) == 0

    @given(st.integers(min_value=-(1 << 40), max_value=1 << 40))
    def test_always_in_range(self, value):
        wrapped = wrap_int(value)
        assert MININT <= wrapped <= MAXINT

    @given(st.integers(min_value=-(1 << 40), max_value=1 << 40))
    def test_congruent_mod_2_32(self, value):
        assert (wrap_int(value) - value) % (1 << 32) == 0

    @given(st.integers(), st.integers())
    def test_addition_homomorphism(self, a, b):
        assert wrap_int(wrap_int(a) + wrap_int(b)) == wrap_int(a + b)

    @given(st.integers(), st.integers())
    def test_multiplication_homomorphism(self, a, b):
        assert wrap_int(wrap_int(a) * wrap_int(b)) == wrap_int(a * b)


class TestToUnsigned:
    def test_negative_one(self):
        assert to_unsigned(-1) == 0xFFFFFFFF

    def test_minint(self):
        assert to_unsigned(MININT) == 0x80000000

    @given(st.integers(min_value=MININT, max_value=MAXINT))
    def test_roundtrip_through_wrap(self, value):
        assert wrap_int(to_unsigned(value)) == value

    @given(st.integers())
    def test_range(self, value):
        assert 0 <= to_unsigned(value) < (1 << 32)


class TestRegisterNames:
    def test_name(self):
        assert register_name(0) == "r0"
        assert register_name(255) == "r255"

    def test_name_out_of_range(self):
        with pytest.raises(ValueError):
            register_name(NUM_REGISTERS)
        with pytest.raises(ValueError):
            register_name(-1)

    def test_parse(self):
        assert parse_register_name("r17") == 17

    def test_parse_rejects_garbage(self):
        for bad in ("x1", "r", "r-1", "r999", "1r", ""):
            with pytest.raises(ValueError):
                parse_register_name(bad)

    @given(st.integers(min_value=0, max_value=NUM_REGISTERS - 1))
    def test_roundtrip(self, index):
        assert parse_register_name(register_name(index)) == index
