"""Tests for condition codes, sync vectors, and the branch evaluator."""

import pytest

from repro.isa import Condition, ControlOp, SyncValue, goto
from repro.machine import (
    ConditionCodes,
    MachineError,
    evaluate_condition,
    sync_done_vector,
)
from repro.machine.condition import select_target


class TestConditionCodes:
    def test_end_of_cycle_commit(self):
        cc = ConditionCodes(4)
        cc.set(2, True)
        assert cc.read(2) is False  # start-of-cycle value
        cc.commit()
        assert cc.read(2) is True

    def test_undefined_prints_x(self):
        cc = ConditionCodes(4)
        assert cc.format() == "XXXX"
        cc.set(1, False)
        cc.commit()
        assert cc.format() == "XFXX"
        cc.set(0, True)
        cc.commit()
        assert cc.format() == "TFXX"

    def test_snapshot_is_immutable_copy(self):
        cc = ConditionCodes(2)
        snap = cc.snapshot()
        cc.set(0, True)
        cc.commit()
        assert snap == (False, False)

    def test_multiple_sets_last_wins(self):
        cc = ConditionCodes(2)
        cc.set(0, True)
        cc.set(0, False)
        cc.commit()
        assert cc.read(0) is False


class TestEvaluateCondition:
    def test_unconditional(self):
        assert evaluate_condition(goto(1), [], []) is True
        op = ControlOp(Condition.ALWAYS_T2, 1)
        assert evaluate_condition(op, [], []) is False

    def test_cc_true(self):
        op = ControlOp(Condition.CC_TRUE, 1, 2, index=1)
        assert evaluate_condition(op, [False, True], []) is True
        assert evaluate_condition(op, [False, False], []) is False

    def test_cross_fu_cc_visibility(self):
        # MINMAX: FU3 branches on FU1's condition code
        op = ControlOp(Condition.CC_TRUE, 1, 2, index=0)
        assert evaluate_condition(op, [True, False, False, False], [])

    def test_ss_done(self):
        op = ControlOp(Condition.SS_DONE, 1, 2, index=2)
        assert evaluate_condition(op, [], [False, False, True]) is True

    def test_all_ss(self):
        op = ControlOp(Condition.ALL_SS_DONE, 1, 2)
        assert evaluate_condition(op, [], [True, True]) is True
        assert evaluate_condition(op, [], [True, False]) is False

    def test_any_ss(self):
        op = ControlOp(Condition.ANY_SS_DONE, 1, 2)
        assert evaluate_condition(op, [], [False, True]) is True
        assert evaluate_condition(op, [], [False, False]) is False

    def test_masked_all_ignores_outsiders(self):
        # section 3.3: barriers among only some threads
        op = ControlOp(Condition.ALL_SS_DONE, 1, 2, mask=(0, 1))
        assert evaluate_condition(op, [], [True, True, False]) is True

    def test_masked_any(self):
        op = ControlOp(Condition.ANY_SS_DONE, 1, 2, mask=(2,))
        assert evaluate_condition(op, [], [True, True, False]) is False

    def test_index_out_of_range_raises(self):
        op = ControlOp(Condition.CC_TRUE, 1, 2, index=5)
        with pytest.raises(MachineError):
            evaluate_condition(op, [False] * 2, [])


class TestSelectTarget:
    def test_conditional_selection(self):
        op = ControlOp(Condition.CC_TRUE, 10, 20, index=0)
        assert select_target(op, True) == 10
        assert select_target(op, False) == 20

    def test_unconditional(self):
        assert select_target(goto(7), True) == 7


class TestSyncVector:
    def test_halted_fus_report_done_by_default(self):
        vec = sync_done_vector([SyncValue.BUSY, None, SyncValue.DONE],
                               halted_done=True)
        assert vec == (False, True, True)

    def test_halted_busy_variant(self):
        vec = sync_done_vector([None], halted_done=False)
        assert vec == (False,)
