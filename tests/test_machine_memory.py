"""Tests for the shared/distributed memory models and devices."""

import pytest
from hypothesis import given, strategies as st

from repro.machine import (
    DeviceMap,
    DistributedMemory,
    InputPort,
    MemoryConflictError,
    MemoryError_,
    OutputPort,
    SharedMemory,
    random_input_port,
)


class TestSharedMemory:
    def test_initial_zero(self):
        mem = SharedMemory(64)
        assert mem.load(0, 5, cycle=0) == 0

    def test_store_commits_end_of_cycle(self):
        mem = SharedMemory(64)
        mem.store(0, 5, 42, cycle=0)
        # same-cycle load sees the old value (section 2.3 semantics)
        assert mem.load(1, 5, cycle=0) == 0
        mem.commit(0)
        assert mem.load(1, 5, cycle=1) == 42

    def test_conflicting_stores_raise(self):
        mem = SharedMemory(64)
        mem.store(0, 5, 1, cycle=0)
        mem.store(1, 5, 2, cycle=0)
        with pytest.raises(MemoryConflictError):
            mem.commit(0)

    def test_conflicts_tolerated_when_detection_off(self):
        mem = SharedMemory(64, detect_conflicts=False)
        mem.store(0, 5, 1, cycle=0)
        mem.store(1, 5, 2, cycle=0)
        mem.commit(0)
        assert mem.conflicts_dropped == 1
        assert mem.peek(5) == 2  # highest-numbered FU wins

    def test_conflict_winner_independent_of_issue_order(self):
        """The documented rule is highest-numbered FU wins — not
        last-appended-to-the-buffer wins.  A lower-numbered FU whose
        store lands in the buffer later must still lose."""
        mem = SharedMemory(64, detect_conflicts=False)
        mem.store(3, 5, 33, cycle=0)
        mem.store(0, 5, 10, cycle=0)   # issued later, lower FU: loses
        mem.store(2, 5, 22, cycle=0)
        mem.commit(0)
        assert mem.peek(5) == 33
        assert mem.conflicts_dropped == 2

    def test_same_fu_rewrites_not_a_conflict(self):
        # two stores from distinct FUs conflict; re-commit of one FU's
        # value to different addresses never does
        mem = SharedMemory(64)
        mem.store(0, 4, 1, cycle=0)
        mem.store(1, 5, 2, cycle=0)
        mem.commit(0)
        assert mem.peek(4) == 1 and mem.peek(5) == 2

    def test_out_of_range_raises(self):
        mem = SharedMemory(16)
        with pytest.raises(MemoryError_):
            mem.load(0, 16, cycle=0)
        with pytest.raises(MemoryError_):
            mem.store(0, -1, 0, cycle=0)

    def test_non_integer_address_raises(self):
        mem = SharedMemory(16)
        with pytest.raises(MemoryError_):
            mem.load(0, 1.5, cycle=0)

    def test_poke_peek_block(self):
        mem = SharedMemory(64)
        mem.poke_block(10, [1, 2, 3])
        assert mem.peek_block(10, 3) == [1, 2, 3]

    @given(st.dictionaries(st.integers(min_value=0, max_value=63),
                           st.integers(), max_size=16))
    def test_store_load_consistency(self, writes):
        mem = SharedMemory(64)
        for cycle, (address, value) in enumerate(writes.items()):
            mem.store(0, address, value, cycle)
            mem.commit(cycle)
        for address, value in writes.items():
            assert mem.peek(address) == value


class TestDistributedMemory:
    def test_banks_are_private(self):
        mem = DistributedMemory(4, 64)
        mem.store(0, 5, 111, cycle=0)
        mem.store(1, 5, 222, cycle=0)
        mem.commit(0)
        assert mem.load(0, 5, cycle=1) == 111
        assert mem.load(1, 5, cycle=1) == 222

    def test_no_bank_raises(self):
        mem = DistributedMemory(2, 64)
        with pytest.raises(MemoryError_):
            mem.load(2, 0, cycle=0)

    def test_poke_targets_bank(self):
        mem = DistributedMemory(2, 64)
        mem.poke(3, 9, bank=1)
        assert mem.peek(3, bank=1) == 9
        assert mem.peek(3, bank=0) == 0


class TestDevices:
    def test_input_port_protocol(self):
        port = InputPort([(5, 42), (9, 43)])
        assert port.read(0, cycle=0) == 0      # not ready
        assert port.read(0, cycle=4) == 0
        assert port.read(0, cycle=5) == 42     # ready, consumed
        assert port.read(0, cycle=6) == 0      # next not ready
        assert port.read(0, cycle=9) == 43
        assert port.delivered == 2
        assert port.polls_failed == 3

    def test_input_port_rejects_zero_values(self):
        with pytest.raises(ValueError):
            InputPort([(0, 0)])

    def test_input_port_write_rejected(self):
        with pytest.raises(IOError):
            InputPort([]).write(0, 1, cycle=0)

    def test_input_port_reset(self):
        port = InputPort([(0, 7)])
        assert port.read(0, cycle=1) == 7
        port.reset()
        assert port.read(0, cycle=1) == 7

    def test_output_port_records_cycles(self):
        port = OutputPort()
        port.write(0, 10, cycle=3)
        port.write(0, 11, cycle=5)
        assert port.writes == [(3, 10), (5, 11)]
        assert port.values == [10, 11]

    def test_output_port_read_rejected(self):
        with pytest.raises(IOError):
            OutputPort().read(0, cycle=0)

    def test_random_input_port_reproducible(self):
        a = random_input_port(5, 3.0, seed=7)
        b = random_input_port(5, 3.0, seed=7)
        assert a.arrivals == b.arrivals
        assert all(v != 0 for _, v in a.arrivals)
        ready = [c for c, _ in a.arrivals]
        assert ready == sorted(ready)

    @pytest.mark.parametrize("first_ready", [0, 1, 17])
    def test_random_input_port_first_ready_is_exact(self, first_ready):
        """first_ready is the earliest ready cycle itself, not a base
        the first inter-arrival gap is added to."""
        port = random_input_port(4, 6.0, seed=3,
                                 first_ready=first_ready)
        assert port.arrivals[0][0] == first_ready
        # a poll at exactly first_ready must deliver
        assert port.read(0, cycle=first_ready) != 0

    def test_random_input_port_rejects_negative_first_ready(self):
        with pytest.raises(ValueError):
            random_input_port(1, 1.0, seed=0, first_ready=-1)

    def test_input_port_serves_out_of_order_arrivals_by_ready_cycle(self):
        """A value listed later but ready earlier must not wait behind
        the listed head (which would starve the poll loop)."""
        port = InputPort([(10, 5), (3, 6)])
        assert port.read(0, cycle=3) == 6    # earlier-ready serves first
        assert port.read(0, cycle=4) == 0    # (10, 5) not ready yet
        assert port.read(0, cycle=10) == 5
        assert port.delivered == 2
        assert port.polls_failed == 1

    def test_input_port_same_cycle_arrivals_keep_listed_order(self):
        port = InputPort([(5, 1), (5, 2)])
        assert port.read(0, cycle=5) == 1
        assert port.read(0, cycle=5) == 2

    def test_input_port_rejects_negative_ready(self):
        with pytest.raises(ValueError):
            InputPort([(-1, 7)])


class TestDeviceMap:
    def test_routing(self):
        devices = DeviceMap()
        port = InputPort([(0, 9)])
        devices.map(0x10, 2, port)
        mem = SharedMemory(64, devices=devices)
        assert mem.load(0, 0x10, cycle=1) == 9
        assert mem.load(0, 5, cycle=1) == 0  # normal memory

    def test_overlap_rejected(self):
        devices = DeviceMap()
        devices.map(0x10, 4, OutputPort())
        with pytest.raises(ValueError):
            devices.map(0x12, 2, OutputPort())

    def test_device_store_bypasses_commit_buffer(self):
        devices = DeviceMap()
        out = OutputPort()
        devices.map(0x20, 1, out)
        mem = SharedMemory(64, devices=devices)
        mem.store(0, 0x20, 5, cycle=2)
        assert out.values == [5]  # visible before commit

    def test_lookup_offset(self):
        devices = DeviceMap()
        out = OutputPort()
        devices.map(0x20, 4, out)
        device, offset = devices.lookup(0x22)
        assert device is out and offset == 2
        assert devices.lookup(0x24) is None
