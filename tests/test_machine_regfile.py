"""Tests for the multiported register file model."""

import pytest
from hypothesis import given, strategies as st

from repro.machine import (
    PortOverflowError,
    RegisterConflictError,
    RegisterFile,
)


class TestBasicSemantics:
    def test_reads_see_start_of_cycle_state(self):
        rf = RegisterFile(16)
        rf.write(0, 3, 42)
        assert rf.read(1, 3) == 0  # not committed yet
        rf.commit(0)
        assert rf.read(1, 3) == 42

    def test_write_latency_two_exposes_delay_slot(self):
        rf = RegisterFile(16, write_latency=2)
        rf.write(0, 3, 42)
        rf.commit(0)
        assert rf.read(0, 3) == 0  # one delay slot (prototype pipeline)
        rf.commit(1)
        assert rf.read(0, 3) == 42

    def test_drain_retires_all_inflight(self):
        rf = RegisterFile(16, write_latency=3)
        rf.write(0, 3, 7)
        rf.drain()
        assert rf.peek(3) == 7

    def test_conflicting_writes_raise(self):
        rf = RegisterFile(16)
        rf.write(0, 3, 1)
        rf.write(1, 3, 2)
        with pytest.raises(RegisterConflictError):
            rf.commit(0)

    def test_conflicts_counted_when_detection_off(self):
        rf = RegisterFile(16, detect_conflicts=False)
        rf.write(0, 3, 1)
        rf.write(1, 3, 2)
        rf.commit(0)
        assert rf.conflicts_dropped == 1
        assert rf.peek(3) == 2

    def test_same_fu_double_write_not_a_conflict(self):
        rf = RegisterFile(16)
        rf.write(0, 3, 1)
        rf.write(0, 3, 2)
        rf.commit(0)
        assert rf.peek(3) == 2

    def test_out_of_range(self):
        rf = RegisterFile(16)
        with pytest.raises(RegisterConflictError):
            rf.read(0, 16)


class TestPorts:
    def test_read_port_budget(self):
        rf = RegisterFile(16, max_read_ports=2)
        rf.read(0, 0)
        rf.read(0, 1)
        with pytest.raises(PortOverflowError):
            rf.read(1, 2)

    def test_write_port_budget(self):
        rf = RegisterFile(16, max_write_ports=1)
        rf.write(0, 0, 1)
        with pytest.raises(PortOverflowError):
            rf.write(1, 1, 2)

    def test_ports_reset_each_cycle(self):
        rf = RegisterFile(16, max_read_ports=1)
        rf.read(0, 0)
        rf.commit(0)
        rf.read(0, 0)  # fresh budget

    def test_peak_statistics(self):
        rf = RegisterFile(16)
        rf.read(0, 0)
        rf.read(0, 1)
        rf.write(0, 2, 9)
        rf.commit(0)
        rf.read(0, 0)
        rf.commit(1)
        assert rf.peak_reads == 2
        assert rf.peak_writes == 1
        assert rf.total_reads == 3


class TestPipelineOrdering:
    @given(st.lists(st.tuples(st.integers(min_value=0, max_value=7),
                              st.integers()), min_size=1, max_size=20))
    def test_last_commit_wins_in_program_order(self, writes):
        """Sequential writes to one register: the last one is final."""
        rf = RegisterFile(8, write_latency=1)
        final = {}
        for cycle, (register, value) in enumerate(writes):
            rf.write(0, register, value)
            rf.commit(cycle)
            final[register] = value
        for register, value in final.items():
            assert rf.peek(register) == value

    def test_interleaved_latency_commits_in_issue_order(self):
        rf = RegisterFile(8, write_latency=2)
        rf.write(0, 1, "first")
        rf.commit(0)
        rf.write(0, 1, "second")
        rf.commit(1)   # "first" retires
        assert rf.peek(1) == "first"
        rf.commit(2)   # "second" retires
        assert rf.peek(1) == "second"
