"""Tests for the two sequencer styles."""

from repro.isa import Condition, ControlOp, goto
from repro.machine import Sequencer, SequencerStyle


class TestExplicitTwoTarget:
    seq = Sequencer(SequencerStyle.EXPLICIT_TWO_TARGET)

    def test_no_incrementer(self):
        # the research model has no PC+1 path: targets are explicit
        op = ControlOp(Condition.CC_TRUE, 8, 2, index=0)
        assert self.seq.next_pc(5, op, True) == 8
        assert self.seq.next_pc(5, op, False) == 2

    def test_goto(self):
        assert self.seq.next_pc(5, goto(0), True) == 0

    def test_possible_next_conditional(self):
        op = ControlOp(Condition.CC_TRUE, 8, 2, index=0)
        assert set(self.seq.possible_next(5, op)) == {8, 2}

    def test_possible_next_halt_keeps_pc(self):
        assert self.seq.possible_next(5, None) == (5,)


class TestIncrementOneTarget:
    seq = Sequencer(SequencerStyle.INCREMENT_ONE_TARGET)

    def test_taken_uses_explicit_target(self):
        op = ControlOp(Condition.CC_TRUE, 8, 2, index=0)
        assert self.seq.next_pc(5, op, True) == 8

    def test_untaken_falls_through(self):
        # the prototype ignores the second target: PC+1
        op = ControlOp(Condition.CC_TRUE, 8, 2, index=0)
        assert self.seq.next_pc(5, op, False) == 6

    def test_always_t2_means_fall_through(self):
        op = ControlOp(Condition.ALWAYS_T2, 99)
        assert self.seq.next_pc(5, op, False) == 6

    def test_possible_next(self):
        op = ControlOp(Condition.CC_TRUE, 8, 2, index=0)
        assert set(self.seq.possible_next(5, op)) == {8, 6}

    def test_possible_next_dedup_when_target_is_fallthrough(self):
        op = ControlOp(Condition.CC_TRUE, 6, 2, index=0)
        assert self.seq.possible_next(5, op) == (6,)
