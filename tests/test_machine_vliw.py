"""Tests for the VLIW simulator (vsim)."""

import pytest

from repro.asm import assemble
from repro.machine import (
    MachineError,
    SimulationLimitError,
    VliwMachine,
    run_vliw,
)


def run(source, registers=None, memory=None, **kw):
    return run_vliw(assemble(source), registers=registers,
                    memory_init=memory, **kw)


class TestSingleStream:
    def test_wide_instruction_executes_all_parcels(self):
        result = run("""
.width 4
=> -> .
| iadd #1,#0,r0
| iadd #2,#0,r1
| iadd #3,#0,r2
| iadd #4,#0,r3
=> halt
| nop
| nop
| nop
| nop
""")
        assert [result.register(i) for i in range(4)] == [1, 2, 3, 4]
        assert result.cycles == 2

    def test_control_comes_from_first_populated_column(self):
        # per-FU control fields differ; the machine follows FU0's
        result = run("""
.width 2
-
| -> @02 ; nop
| -> @01 ; nop
-
| empty
| halt ; iadd #1,#0,r0
-
| halt ; iadd #2,#0,r0
| empty
""")
        assert result.register(0) == 2

    def test_branch_on_any_fu_condition_code(self):
        # the single sequencer sees every FU's CC (Figure 4 model)
        result = run("""
.width 2
=> -> .
| nop
| gt #5,#1
=> if cc1 @02, @03
| nop
| nop
-
| halt ; iadd #10,#0,r0
| empty
-
| halt ; iadd #20,#0,r0
| empty
""")
        assert result.register(0) == 10

    def test_sync_conditions_rejected(self):
        program = assemble("""
.width 1
-
| if all @00, @00 ; nop
""")
        machine = VliwMachine(program)
        with pytest.raises(MachineError):
            machine.run(10)

    def test_empty_row_halts(self):
        result = run("""
.width 1
-
| -> @05 ; iadd #1,#0,r0
""")
        assert result.halted
        assert result.register(0) == 1

    def test_watchdog(self):
        with pytest.raises(SimulationLimitError):
            run(".width 1\nspin:\n| -> spin ; nop\n", max_cycles=50)


class TestSharedDatapathSemantics:
    def test_end_of_cycle_commit_matches_ximd(self):
        result = run("""
.width 2
=> -> .
| iadd r1,#0,r0
| iadd r0,#0,r1
=> halt
| nop
| nop
""", registers={0: 1, 1: 2})
        assert result.register(0) == 2
        assert result.register(1) == 1

    def test_memory_ops(self):
        result = run("""
.width 2
=> -> .
| store #7,#30
| nop
=> -> .
| load #30,#0,r0
| nop
=> halt
| nop
| nop
""")
        assert result.register(0) == 7

    def test_trace_single_partition(self):
        program = assemble("""
.width 2
=> -> .
| nop
| nop
=> halt
| nop
| nop
""")
        machine = VliwMachine(program, trace=True)
        result = machine.run(10)
        assert all(record.partition == ((0, 1),)
                   for record in result.trace)
