"""Tests for the XIMD simulator (xsim) using hand-built programs."""

import pytest

from repro.asm import assemble
from repro.machine import (
    MachineConfig,
    SimulationLimitError,
    TrackerKind,
    XimdMachine,
    prototype_config,
    research_config,
    run_ximd,
)


def run(source, registers=None, memory=None, config=None, **kw):
    return run_ximd(assemble(source), registers=registers,
                    memory_init=memory, config=config, **kw)


class TestBasics:
    def test_single_op_then_halt(self):
        result = run("""
.width 1
-
| -> . ; iadd #2,#3,r0
-
| halt ; nop
""")
        assert result.register(0) == 5
        assert result.cycles == 2
        assert result.halted

    def test_empty_slot_halts_fu(self):
        result = run("""
.width 2
-
| -> . ; iadd #1,#0,r0
| halt ; iadd #2,#0,r1
-
| halt ; iadd #9,#0,r2
""")
        # FU0 runs two cycles; FU1 halts after the first
        assert result.register(0) == 1
        assert result.register(1) == 2
        assert result.register(2) == 9

    def test_pc_out_of_range_halts(self):
        result = run("""
.width 1
-
| -> @20 ; iadd #1,#0,r0
""")
        assert result.register(0) == 1
        assert result.halted

    def test_watchdog(self):
        with pytest.raises(SimulationLimitError):
            run("""
.width 1
spin:
| -> spin ; nop
""", max_cycles=100)


class TestDatapathTiming:
    def test_same_cycle_reads_see_old_values(self):
        # FU0 writes r0 while FU1 reads it: end-of-cycle commit
        result = run("""
.width 2
-
| -> . ; iadd #7,#0,r0
| -> . ; iadd r0,#0,r1
-
=> halt
| nop
| nop
""", registers={0: 100})
        assert result.register(0) == 7
        assert result.register(1) == 100  # old value

    def test_swap_in_one_cycle(self):
        # the classic: two FUs exchange registers in a single cycle
        result = run("""
.width 2
-
| -> . ; iadd r1,#0,r0
| -> . ; iadd r0,#0,r1
-
=> halt
| nop
| nop
""", registers={0: 1, 1: 2})
        assert result.register(0) == 2
        assert result.register(1) == 1

    def test_load_sees_same_cycle_store_old_value(self):
        result = run("""
.width 2
-
| -> . ; store #42,#10
| -> . ; load #10,#0,r0
-
=> halt
| nop
| nop
""")
        assert result.register(0) == 0

    def test_store_then_load_next_cycle(self):
        result = run("""
.width 1
-
| -> . ; store #42,#10
-
| -> . ; load #10,#0,r0
-
| halt ; nop
""")
        assert result.register(0) == 42


class TestControlTiming:
    def test_branch_reads_previous_cycle_compare(self):
        # compare at 00 commits end of cycle; branch at 01 reads it
        result = run("""
.width 1
-
| -> . ; lt #1,#2
-
| if cc0 @02, @03 ; nop
-
| halt ; iadd #111,#0,r0
-
| halt ; iadd #222,#0,r0
""")
        assert result.register(0) == 111

    def test_branch_same_cycle_compare_uses_stale_cc(self):
        # the compare in the SAME cycle as the branch is not visible
        result = run("""
.width 1
-
| if cc0 @01, @02 ; lt #1,#2
-
| halt ; iadd #111,#0,r0
-
| halt ; iadd #222,#0,r0
""")
        assert result.register(0) == 222  # cc0 still FALSE (undefined)

    def test_cross_fu_branch(self):
        # FU1 branches on FU0's condition code
        result = run("""
.width 2
-
| -> . ; gt #5,#3
| -> . ; nop
-
| halt ; nop
| if cc0 @02, @03 ; nop
-
| empty
| halt ; iadd #1,#0,r0
-
| empty
| halt ; iadd #2,#0,r0
""")
        assert result.register(0) == 1


class TestSynchronization:
    BARRIER = """
.width 2
// FU0 loops 3 times; FU1 waits at the barrier
-
| -> . ; iadd #0,#0,r0
| -> @04 ; nop
-
| -> . ; iadd r0,#1,r0
-
| -> . ; ge r0,#3
-
| if cc0 @04, @01 ; nop
-
| if all @05, @04 ; nop ; done
| if all @05, @04 ; nop ; done
-
=> halt
| iadd #100,r0,r1
| nop
"""

    def test_barrier_joins_streams(self):
        result = run(self.BARRIER)
        assert result.register(0) == 3
        assert result.register(1) == 103

    def test_trace_shows_fork_and_join(self):
        program = assemble(self.BARRIER)
        machine = XimdMachine(program, trace=True,
                              tracker=TrackerKind.ADAPTIVE)
        result = machine.run(1000)
        partitions = [r.partition for r in result.trace]
        assert any(len(p) == 2 for p in partitions)   # forked
        assert len(partitions[-1]) == 1                # joined

    def test_ss_done_condition(self):
        # FU1 spins until FU0's parcel carries DONE
        result = run("""
.width 2
-
| -> . ; nop
| if ss0 @02, @01 ; nop
-
| -> . ; nop ; done
| if ss0 @02, @01 ; nop
-
| halt ; nop ; done
| halt ; iadd #5,#0,r0
""")
        assert result.register(0) == 5

    def test_registered_ss_delays_visibility(self):
        # halted_sync_done=False keeps the reset registers at BUSY so
        # the test isolates the *delay*: FU1 sees FU0's DONE one cycle
        # later than the combinational variant would show it
        config = research_config(2, ss_registered=True,
                                 halted_sync_done=False)
        result = run("""
.width 2
-
| -> . ; nop ; done
| if ss0 @02, @01 ; iadd r0,#1,r0
-
| -> . ; nop ; done
| if ss0 @02, @01 ; iadd r0,#1,r0
-
| halt ; nop ; done
| halt ; nop
""", config=config)
        # registered distribution: one extra poll vs the combinational
        # default (which would leave r0 == 1)
        assert result.register(0) == 2

    def test_registered_ss_seed_honors_halted_sync_done(self):
        # regression: the reset sync registers must hold the
        # halted_sync_done contribution, not hardwired BUSY — with the
        # default (DONE) the cycle-0 branch already observes ss0 DONE
        # and FU1 takes the exit on its first poll
        config = research_config(2, ss_registered=True,
                                 halted_sync_done=True)
        result = run("""
.width 2
-
| -> . ; nop ; done
| if ss0 @02, @01 ; iadd r0,#1,r0
-
| -> . ; nop ; done
| if ss0 @02, @01 ; iadd r0,#1,r0
-
| halt ; nop ; done
| halt ; nop
""", config=config)
        # DONE observed on cycle 0: exactly one poll (the buggy
        # all-BUSY seed forced a second iteration, r0 == 2)
        assert result.register(0) == 1

    def test_halted_fu_counts_as_done_in_barrier(self):
        result = run("""
.width 2
-
| halt ; nop
| if all @01, @00 ; nop ; done
-
| empty
| halt ; iadd #9,#0,r0
""")
        assert result.register(0) == 9


class TestPrototypeConfig:
    def test_write_latency_exposes_delay_slot(self):
        config = prototype_config(1, memory_words=64)
        result = run("""
.width 1
-
| -> . ; iadd #5,#0,r0
-
| -> . ; iadd r0,#0,r1
-
| -> . ; iadd r0,#0,r2
-
| halt ; nop
""", config=config)
        assert result.register(1) == 0   # read in the delay slot
        assert result.register(2) == 5   # committed by now

    def test_incrementing_sequencer_falls_through(self):
        config = prototype_config(1, memory_words=64)
        result = run("""
.width 1
-
| if cc0 @03, @03 ; nop
-
| -> . ; iadd #1,#0,r0
-
| halt ; nop
-
| halt ; iadd #2,#0,r0
""", config=config)
        # cc0 false -> PC+1, the @03 untaken target is ignored
        assert result.register(0) == 1


class TestStats:
    def test_op_and_branch_counts(self):
        program = assemble("""
.width 2
-
| -> . ; iadd #1,#2,r0
| -> . ; nop
-
| if cc0 @02, @02 ; lt #1,#2
| -> @02 ; nop
-
=> halt
| nop
| nop
""")
        machine = XimdMachine(program)
        result = machine.run(100)
        assert result.stats.data_ops == 2
        assert result.stats.nops >= 3
        assert result.stats.branches_conditional == 1
        assert result.stats.branches_unconditional == 3
        assert 0 < result.stats.utilization(2) < 1


class TestConfigValidation:
    def test_width_mismatch_rejected(self):
        program = assemble(".width 2\n-\n| halt ; nop\n| halt ; nop\n")
        from repro.machine import ProgramError
        with pytest.raises(ProgramError):
            XimdMachine(program, config=research_config(4))

    def test_bad_config_values(self):
        with pytest.raises(ValueError):
            MachineConfig(n_fus=0)
        with pytest.raises(ValueError):
            MachineConfig(write_latency=0)
