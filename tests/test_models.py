"""Tests for the section 2 state-machine models and emulation theorems."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.asm import assemble
from repro.machine import VliwMachine, XimdMachine
from repro.models import (
    HALT,
    MicroKind,
    MicroOp,
    MimdMachine,
    MimdProgram,
    SimdMachine,
    SimdProgram,
    SisdMachine,
    SisdProgram,
    VliwModelMachine,
    VliwModelProgram,
    XimdModelMachine,
    XimdModelProgram,
    duplicate_control,
    embed_mimd_in_ximd,
    embed_simd_in_vliw,
    embed_vliw_in_ximd,
    equivalent_runs,
    goto,
    if_cc,
    is_mimd_expressible,
    is_vliw_expressible,
)


def ldi(dst, imm):
    return MicroOp(MicroKind.LDI, dst=dst, imm=imm)


def add(dst, a, b):
    return MicroOp(MicroKind.ADD, dst=dst, src1=a, src2=b)


def cmp_gt(a, b):
    return MicroOp(MicroKind.CMP_GT, src1=a, src2=b)


class TestSisd:
    def test_straight_line(self):
        program = SisdProgram((
            (ldi(0, 5), goto(1)),
            (ldi(1, 7), goto(2)),
            (add(2, 0, 1), HALT),
        ))
        result = SisdMachine(program).run()
        (regs, cc), = result.final_datapath_state()
        assert regs[2] == 12
        assert result.halted

    def test_conditional_loop(self):
        # count r0 down: r0 > 0 loop
        program = SisdProgram((
            (MicroOp(MicroKind.SUB, dst=0, src1=0, src2=1), goto(1)),
            (cmp_gt(0, 2), goto(2)),
            (MicroOp(), if_cc(0, 0, 3)),
            (MicroOp(), HALT),
        ))
        machine = SisdMachine(program, registers=[5, 1, 0, 0])
        result = machine.run()
        (regs, _), = result.final_datapath_state()
        assert regs[0] == 0

    def test_sisd_delta_restricted_to_own_state(self):
        with pytest.raises(ValueError):
            SisdProgram(((MicroOp(), if_cc(1, 0, 0)),))

    def test_bad_target(self):
        with pytest.raises(ValueError):
            SisdProgram(((MicroOp(), goto(7)),))


class TestEmulationTheorems:
    def _simd_program(self):
        return SimdProgram((
            (ldi(0, 3), goto(1)),
            (add(1, 0, 0), goto(2)),
            (add(1, 1, 1), HALT),
        ), n_units=4)

    def test_simd_runs(self):
        result = SimdMachine(self._simd_program()).run()
        for regs, _ in result.final_datapath_state():
            assert regs[1] == 12

    def test_vliw_supersets_simd(self):
        """Identical lambda_i == lambda: functionally equivalent."""
        simd = self._simd_program()
        registers = [[i, 0, 0, 0] for i in range(4)]
        run_simd = SimdMachine(simd, registers).run()
        run_vliw = VliwModelMachine(embed_simd_in_vliw(simd),
                                    registers).run()
        assert equivalent_runs(run_simd, run_vliw)

    def _vliw_program(self):
        return VliwModelProgram((
            ((ldi(0, 2), cmp_gt(0, 1)), goto(1)),
            ((add(1, 0, 0), MicroOp()), if_cc(1, 2, 1)),
            ((MicroOp(), add(0, 0, 0)), HALT),
        ))

    def test_ximd_supersets_vliw(self):
        """Identical delta_i and S_i(0): functionally equivalent."""
        vliw = self._vliw_program()
        registers = [[4, 1, 0, 0], [9, 2, 0, 0]]
        run_v = VliwModelMachine(vliw, registers).run()
        run_x = XimdModelMachine(embed_vliw_in_ximd(vliw),
                                 registers).run()
        assert equivalent_runs(run_v, run_x)

    def test_embedded_vliw_is_syntactically_vliw(self):
        assert is_vliw_expressible(embed_vliw_in_ximd(self._vliw_program()))

    def _mimd_program(self):
        # two fully independent countdown streams (each delta_i watches
        # only its own condition code, per the MIMD restriction)
        def unit(index):
            return (
                (MicroOp(MicroKind.SUB, dst=0, src1=0, src2=1), goto(1)),
                (MicroOp(MicroKind.CMP_GT, src1=0, src2=2), goto(2)),
                (MicroOp(), if_cc(index, 0, 3)),
                (MicroOp(), HALT),
            )
        return MimdProgram((unit(0), unit(1)))

    def test_mimd_streams_independent(self):
        program = self._mimd_program()
        registers = [[3, 1, 0, 0], [7, 1, 0, 0]]
        result = MimdMachine(program, registers).run()
        states = result.final_datapath_state()
        assert states[0][0][0] == 0 and states[1][0][0] == 0
        assert result.halted

    def test_ximd_supersets_mimd(self):
        program = self._mimd_program()
        registers = [[3, 1, 0, 0], [7, 1, 0, 0]]
        run_m = MimdMachine(program, registers).run()
        run_x = XimdModelMachine(embed_mimd_in_ximd(program),
                                 registers).run()
        assert equivalent_runs(run_m, run_x)

    def test_mimd_restriction_enforced(self):
        with pytest.raises(ValueError):
            MimdProgram((
                ((MicroOp(), if_cc(1, 0, 0)),),
                ((MicroOp(), HALT),),
            ))

    def test_mimd_expressibility_predicate(self):
        assert is_mimd_expressible(embed_mimd_in_ximd(self._mimd_program()))
        cross = XimdModelProgram((
            ((MicroOp(), if_cc(1, 0, 0)),),
            ((MicroOp(), HALT),),
        ))
        assert not is_mimd_expressible(cross)


@st.composite
def simd_programs(draw):
    """Random terminating SIMD programs: forward-jumping rows."""
    length = draw(st.integers(min_value=1, max_value=6))
    rows = []
    for index in range(length):
        kind = draw(st.sampled_from([MicroKind.NOP, MicroKind.LDI,
                                     MicroKind.ADD, MicroKind.SUB,
                                     MicroKind.CMP_GT]))
        op = MicroOp(kind,
                     dst=draw(st.integers(0, 3)),
                     src1=draw(st.integers(0, 3)),
                     src2=draw(st.integers(0, 3)),
                     imm=draw(st.integers(-5, 5)))
        if index == length - 1:
            spec = HALT
        else:
            # forward targets only: guaranteed termination
            t1 = draw(st.integers(index + 1, length - 1))
            t2 = draw(st.integers(index + 1, length - 1))
            unit = draw(st.integers(0, 3))
            spec = draw(st.sampled_from([goto(t1), if_cc(unit, t1, t2)]))
        rows.append((op, spec))
    return SimdProgram(tuple(rows), n_units=4)


class TestEmulationProperty:
    @settings(max_examples=60, deadline=None)
    @given(simd_programs(),
           st.lists(st.lists(st.integers(-8, 8), min_size=4, max_size=4),
                    min_size=4, max_size=4))
    def test_simd_vliw_ximd_tower(self, simd, registers):
        """SIMD == its VLIW embedding == that embedding's XIMD form,
        on random programs and initial states."""
        run_s = SimdMachine(simd, registers).run()
        vliw = embed_simd_in_vliw(simd)
        run_v = VliwModelMachine(vliw, registers).run()
        run_x = XimdModelMachine(embed_vliw_in_ximd(vliw),
                                 registers).run()
        assert equivalent_runs(run_s, run_v)
        assert equivalent_runs(run_v, run_x)


class TestConcreteDuplicateControl:
    def test_vliw_code_runs_identically_on_ximd(self):
        """The Example 1 recipe on the real machines."""
        source = """
.width 2
-
| -> . ; iadd #1,#2,r0
| empty
-
| -> . ; lt r0,#10
| -> . ; iadd r0,r0,r1
-
| if cc0 @03, @04 ; nop
| empty
-
| -> @04 ; iadd r1,#1,r2
| empty
-
=> halt
| nop
| nop
"""
        program = assemble(source)
        vliw_run = VliwMachine(program).run(100)
        ximd_run = XimdMachine(duplicate_control(program)).run(100)
        assert vliw_run.registers == ximd_run.registers
        assert vliw_run.cycles == ximd_run.cycles

    def test_paper_examples_equivalence(self):
        from repro.workloads import (MINMAX_REGS, minmax_memory,
                                     minmax_vliw_source)
        program = assemble(minmax_vliw_source())
        init = minmax_memory((5, 3, 4, 7))
        vm = VliwMachine(program)
        xm = XimdMachine(duplicate_control(program))
        for machine in (vm, xm):
            machine.regfile.poke(MINMAX_REGS["n"], 4)
            for address, value in init.items():
                machine.memory.poke(address, value)
        rv, rx = vm.run(1000), xm.run(1000)
        assert rv.cycles == rx.cycles
        assert rv.registers == rx.registers
