"""Tests for the observability subsystem (``repro.obs``).

Covers the event vocabulary and its JSON round-trip, the sinks, the
metrics registry, observer scoping and pass spans, the Chrome trace
exporter, run reports (including agreement with the analysis-layer
aggregates on a real instrumented run), Figure-10 replay, and the
``python -m repro.obs`` CLI.
"""

import io
import json

import pytest

from repro.analysis import PartitionStats, RunMetrics
from repro.asm import assemble
from repro.machine import TrackerKind, XimdMachine, run_vliw
from repro.obs import (
    BranchEvent,
    Counter,
    CycleEvent,
    Gauge,
    Histogram,
    JsonlSink,
    MetricsRegistry,
    NULL_OBSERVER,
    NullObserver,
    Observer,
    PartitionChangeEvent,
    PassEvent,
    RingBufferSink,
    RunReport,
    SyncEvent,
    Timer,
    chrome_trace,
    chrome_trace_events,
    current_observer,
    event_from_dict,
    event_to_dict,
    events_to_trace,
    observed,
    read_jsonl,
    recording_observer,
    set_observer,
    write_chrome_trace,
)
from repro.obs.__main__ import main as obs_main
from repro.workloads import (
    FIGURE10_DATA,
    MINMAX_REGS,
    minmax_memory,
    minmax_source,
)

ALL_EVENTS = [
    CycleEvent(machine="ximd", cycle=3, pcs=(4, None, 5, 6), cc="TFXT",
               ss="-D--", partition=((0, 2), (3,)), data_ops=2),
    BranchEvent(machine="ximd", cycle=3, fu=1, pc=4, branch_kind="cond",
                taken=True, target=9),
    SyncEvent(machine="ximd", cycle=5, fu=0, pc=7, what="barrier"),
    PartitionChangeEvent(machine="ximd", cycle=6,
                         partition=((0, 1, 2, 3),), n_ssets=1),
    PassEvent(name="simplify", seconds=0.001, ops_in=12, ops_out=9,
              start=1.5, extra={"note": "x"}),
]


def minmax_machine(**kwargs):
    machine = XimdMachine(assemble(minmax_source("halt")), **kwargs)
    machine.regfile.poke(MINMAX_REGS["n"], len(FIGURE10_DATA))
    for address, value in minmax_memory(FIGURE10_DATA).items():
        machine.memory.poke(address, value)
    return machine


class TestEvents:
    @pytest.mark.parametrize("event", ALL_EVENTS,
                             ids=[e.kind for e in ALL_EVENTS])
    def test_round_trip(self, event):
        payload = event_to_dict(event)
        assert payload["kind"] == event.kind
        # must survive actual JSON serialization, not just dict copy
        restored = event_from_dict(json.loads(json.dumps(payload)))
        assert restored == event

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown event kind"):
            event_from_dict({"kind": "bogus"})

    def test_partition_and_pcs_are_tuples_after_replay(self):
        event = event_from_dict(json.loads(
            json.dumps(event_to_dict(ALL_EVENTS[0]))))
        assert event.pcs == (4, None, 5, 6)
        assert event.partition == ((0, 2), (3,))


class TestSinks:
    def test_ring_buffer_keeps_last_n(self):
        sink = RingBufferSink(capacity=2)
        for cycle in range(4):
            sink.emit(CycleEvent("ximd", cycle, (0,), "X", "-"))
        assert len(sink) == 2
        assert [e.cycle for e in sink.events] == [2, 3]

    def test_of_kind_filters(self):
        sink = RingBufferSink()
        for event in ALL_EVENTS:
            sink.emit(event)
        assert len(sink.of_kind("cycle")) == 1
        assert sink.of_kind("pass")[0].name == "simplify"

    def test_jsonl_file_round_trip(self, tmp_path):
        path = tmp_path / "sub" / "trace.jsonl"
        sink = JsonlSink(path)     # creates parent directories
        for event in ALL_EVENTS:
            sink.emit(event)
        sink.close()
        assert sink.emitted == len(ALL_EVENTS)
        assert read_jsonl(path) == ALL_EVENTS

    def test_jsonl_stream_target(self):
        stream = io.StringIO()
        sink = JsonlSink(stream)
        sink.emit(ALL_EVENTS[0])
        sink.close()               # must not close a borrowed stream
        assert not stream.closed
        assert read_jsonl(stream.getvalue().splitlines()) == [ALL_EVENTS[0]]


class TestMetrics:
    def test_counter_gauge(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.counter("c").inc(4)
        registry.gauge("g").set(2.5)
        assert registry.counter("c").value == 5
        assert registry.gauge("g").value == 2.5

    def test_histogram_stats(self):
        h = Histogram("ports")
        for value in (1, 2, 2, 3):
            h.observe(value)
        assert h.total == 4
        assert h.mean == 2.0
        assert (h.min, h.max) == (1, 3)
        assert h.to_dict()["counts"] == {"1": 1, "2": 2, "3": 1}

    def test_timer_context_manager_and_decorator(self):
        registry = MetricsRegistry()
        with registry.timer("t").time():
            pass

        @registry.timed("t")
        def work():
            return 7

        assert work() == 7
        timer = registry.timer("t")
        assert timer.count == 2
        assert timer.total_seconds >= 0.0

    def test_name_collision_across_types_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError, match="already registered"):
            registry.gauge("x")

    def test_render_and_dict(self):
        registry = MetricsRegistry()
        registry.counter("runs").inc(3)
        registry.histogram("ports").observe(2)
        registry.timer("wall").observe(0.5)
        registry.gauge("util").set(0.25)
        as_dict = registry.to_dict()
        assert as_dict["runs"] == {"type": "counter", "value": 3}
        text = registry.render_text()
        for name in registry.names():
            assert name in text


class TestObserver:
    def test_pass_span_emits_event_and_timer(self):
        obs = recording_observer()
        with obs.pass_span("simplify", ops_in=10) as span:
            span.ops_out = 7
            span.extra["blocks"] = 2
        (event,) = obs.sinks[0].of_kind("pass")
        assert (event.ops_in, event.ops_out) == (10, 7)
        assert event.extra == {"blocks": 2}
        assert event.seconds >= 0.0
        assert obs.registry.timer("pass.simplify").count == 1

    def test_null_observer_pass_span_is_inert(self):
        span_obs = NullObserver()
        with span_obs.pass_span("simplify", ops_in=10) as span:
            span.ops_out = 7
        assert not span_obs.enabled
        assert len(span_obs.registry) == 0

    def test_observed_scoping(self):
        assert current_observer() is NULL_OBSERVER
        obs = recording_observer()
        with observed(obs):
            assert current_observer() is obs
            inner = Observer()
            previous = set_observer(inner)
            assert previous is obs
            set_observer(previous)
        assert current_observer() is NULL_OBSERVER

    def test_sink_fanout(self):
        ring1, ring2 = RingBufferSink(), RingBufferSink()
        obs = Observer([ring1])
        obs.add_sink(ring2)
        obs.emit(ALL_EVENTS[0])
        assert ring1.events == ring2.events == [ALL_EVENTS[0]]


class TestInstrumentedRun:
    def test_ximd_run_emits_cycle_events_and_metrics(self):
        obs = recording_observer()
        machine = minmax_machine(trace=True, tracker=TrackerKind.EXACT,
                                 obs=obs)
        result = machine.run(10_000)
        assert result.halted
        cycles = obs.sinks[0].of_kind("cycle")
        assert len(cycles) == result.cycles
        assert all(e.machine == "ximd" for e in cycles)
        # per-cycle data_ops deltas must sum to the datapath total
        assert sum(e.data_ops for e in cycles) == result.stats.data_ops
        assert obs.registry.counter("ximd.cycles").value == result.cycles
        assert obs.registry.timer("ximd.run_wall").count == 1
        # MINMAX forks and joins: partition changes and branches observed
        assert obs.sinks[0].of_kind("partition")
        assert obs.sinks[0].of_kind("branch")

    def test_report_agrees_with_analysis_aggregates(self):
        obs = recording_observer()
        machine = minmax_machine(trace=True, tracker=TrackerKind.EXACT,
                                 obs=obs)
        result = machine.run(10_000)
        events = obs.sinks[0].events
        report = RunReport.from_events(events, registry=obs.registry)

        metrics = RunMetrics.from_result(result, machine.config.n_fus)
        stats = PartitionStats.from_trace(machine.trace)
        assert report.machine == "ximd"
        assert report.n_fus == machine.config.n_fus
        assert report.cycles == metrics.cycles
        assert report.data_ops == metrics.data_ops
        assert report.utilization == pytest.approx(metrics.utilization)
        assert report.sset_histogram == stats.stream_histogram
        assert report.mean_streams == pytest.approx(stats.mean_streams)
        assert report.max_streams == stats.max_streams
        assert report.multi_stream_fraction == pytest.approx(
            stats.multi_stream_fraction)
        assert "ximd.cycles" in report.metrics
        # renderings exist and serialize
        json.loads(report.to_json())
        assert "run report" in report.render_text()

    def test_events_replay_to_identical_figure10_table(self):
        obs = recording_observer()
        machine = minmax_machine(trace=True, tracker=TrackerKind.EXACT,
                                 obs=obs)
        machine.run(10_000)
        replayed = events_to_trace(obs.sinks[0].events)
        assert replayed.format(show_sync=True) == \
            machine.trace.format(show_sync=True)

    def test_events_to_trace_requires_cycle_events(self):
        with pytest.raises(ValueError, match="no cycle events"):
            events_to_trace([ALL_EVENTS[1]])

    def test_vliw_run_emits_vliw_events(self):
        obs = recording_observer()
        result = run_vliw(assemble("""
.width 2
=> -> .
| iadd #1,#0,r0
| iadd #2,#0,r1
=> halt
| nop
| nop
"""), obs=obs)
        cycles = obs.sinks[0].of_kind("cycle")
        assert len(cycles) == result.cycles
        assert all(e.machine == "vliw" for e in cycles)
        # a VLIW machine is always one stream
        assert all(len(e.partition) == 1 for e in cycles)

    def test_disabled_observer_changes_nothing(self):
        baseline = minmax_machine(tracker=TrackerKind.EXACT).run(10_000)
        quiet = minmax_machine(tracker=TrackerKind.EXACT,
                               obs=NULL_OBSERVER).run(10_000)
        assert quiet.cycles == baseline.cycles
        assert quiet.stats.data_ops == baseline.stats.data_ops
        assert len(NULL_OBSERVER.registry) == 0

    def test_default_observer_is_ambient(self):
        obs = recording_observer()
        with observed(obs):
            machine = minmax_machine()   # no obs= argument
        assert machine.obs is obs


class TestChromeTrace:
    def _events(self):
        obs = recording_observer()
        machine = minmax_machine(trace=True, tracker=TrackerKind.EXACT,
                                 obs=obs)
        machine.run(10_000)
        return obs.sinks[0].events, machine

    def test_one_track_per_fu(self):
        events, machine = self._events()
        trace = chrome_trace(events)
        payload = json.loads(json.dumps(trace))  # must be JSON-clean
        assert payload["traceEvents"]
        slices = [e for e in payload["traceEvents"]
                  if e["ph"] == "X" and e.get("cat") == "fetch"]
        tracks = {e["tid"] for e in slices}
        assert tracks == set(range(machine.config.n_fus))
        names = {e["args"]["name"]
                 for e in payload["traceEvents"]
                 if e["ph"] == "M" and e["name"] == "thread_name"}
        assert {f"FU{i}" for i in range(machine.config.n_fus)} <= names

    def test_counter_and_instant_events(self):
        events, _ = self._events()
        chrome = chrome_trace_events(events)
        assert any(e["ph"] == "C" and "ssets" in e["args"] for e in chrome)
        assert any(e["ph"] == "i" and e["cat"] == "partition"
                   for e in chrome)

    def test_pass_events_render_on_compiler_process(self):
        chrome = chrome_trace_events([ALL_EVENTS[4]])
        slices = [e for e in chrome if e["ph"] == "X"]
        assert slices[0]["cat"] == "compiler"
        assert slices[0]["dur"] == pytest.approx(1000.0)

    def test_write_chrome_trace(self, tmp_path):
        events, _ = self._events()
        path = write_chrome_trace(tmp_path / "t.json", events)
        payload = json.loads(path.read_text())
        assert payload["otherData"]["source"] == "repro.obs"


class TestCli:
    @pytest.fixture()
    def trace_path(self, tmp_path):
        obs = Observer(JsonlSink(tmp_path / "trace.jsonl"))
        machine = minmax_machine(trace=True, tracker=TrackerKind.EXACT,
                                 obs=obs)
        machine.run(10_000)
        obs.close()
        return tmp_path / "trace.jsonl"

    def test_summary(self, trace_path, capsys):
        assert obs_main(["summary", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "events" in out and "cycle" in out

    def test_fig10(self, trace_path, capsys):
        assert obs_main(["fig10", "--sync", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "FU0" in out and "Partition" in out and "SS" in out

    def test_report_json(self, trace_path, capsys):
        assert obs_main(["report", "--json", str(trace_path)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["machine"] == "ximd"
        assert payload["cycles"] > 0

    def test_chrome(self, trace_path, tmp_path, capsys):
        out_path = tmp_path / "out.chrome.json"
        assert obs_main(["chrome", str(trace_path),
                         "-o", str(out_path)]) == 0
        payload = json.loads(out_path.read_text())
        assert payload["traceEvents"]


class TestCompilerTelemetry:
    def test_compile_xc_reports_passes(self):
        from repro.compiler import compile_xc
        from repro.workloads import LL12_XC

        obs = recording_observer()
        with observed(obs):
            compile_xc(LL12_XC, width=4)
        names = {e.name for e in obs.sinks[0].of_kind("pass")}
        assert {"simplify", "regalloc", "list_schedule", "emit"} <= names
        for event in obs.sinks[0].of_kind("pass"):
            assert event.seconds >= 0.0
            assert event.ops_in >= 0

    def test_packers_report_height(self):
        from repro.compiler import pack_skyline
        from repro.compiler.tiles import Tile

        obs = recording_observer()
        tiles = [Tile(f"t{i}", 2, 3 + i, None) for i in range(3)]
        with observed(obs):
            packing = pack_skyline(tiles, total_width=8)
        (event,) = obs.sinks[0].of_kind("pass")
        assert event.name == "pack_skyline"
        assert event.ops_in == 3
        assert event.ops_out == packing.height
