"""Tests for the differential-analysis tier of ``repro.obs``.

Covers artifact schema versioning (satellite: unknown versions are
rejected with a clean error), the run-diff engine's direction policy
and threshold semantics, the benchmark history ledger (determinism,
dedupe, trend rendering), the offline HTML dashboard, and — for every
``diff``/``gate``/``history``/``html`` subcommand — the CLI exit codes
on the happy path, on regressions, and on each error path (missing
file, malformed JSON, mismatched workload sets).
"""

import json

import pytest

from repro.asm import assemble
from repro.machine import TrackerKind, XimdMachine
from repro.obs import (
    FU_CLASS_NAMES,
    RunReport,
    SCHEMA_VERSION,
    SchemaError,
    WorkloadMismatchError,
    append_record,
    check_artifact,
    diff_artifacts,
    latest_record,
    load_artifact,
    make_record,
    read_history,
    recording_observer,
    render_dashboard,
    render_trend,
    write_dashboard,
)
from repro.obs import load_tolerance_table
from repro.obs.history import (
    calibrate_tolerances,
    record_sections,
    series,
)
from repro.obs.diff import (
    MetricDelta,
    flatten_numeric,
    is_timing_path,
    metric_direction,
)
from repro.obs.__main__ import EXIT_REGRESSION, main as obs_main
from repro.workloads import (
    FIGURE10_DATA,
    MINMAX_REGS,
    minmax_memory,
    minmax_source,
)


def minmax_events():
    obs = recording_observer()
    machine = XimdMachine(assemble(minmax_source("halt")), obs=obs,
                          trace=True, tracker=TrackerKind.EXACT)
    machine.regfile.poke(MINMAX_REGS["n"], len(FIGURE10_DATA))
    for address, value in minmax_memory(FIGURE10_DATA).items():
        machine.memory.poke(address, value)
    machine.run(10_000)
    return list(obs.sinks[0].events)


def summary(workloads, **extra_sections):
    artifact = {"schema_version": SCHEMA_VERSION, "kind": "bench_summary",
                "workloads": workloads}
    artifact.update(extra_sections)
    return artifact


MINMAX = {"ximd_cycles": 193, "vliw_cycles": 329, "speedup": 1.70}


def write_json(path, payload):
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return str(path)


class TestSchema:
    def test_missing_version_rejected_with_regenerate_hint(self):
        with pytest.raises(SchemaError, match="regenerate"):
            check_artifact({"workloads": {}}, "old.json")

    def test_unsupported_version_rejected(self):
        with pytest.raises(SchemaError, match="schema_version"):
            check_artifact({"schema_version": 999, "kind": "bench_summary"},
                           "future.json")

    def test_non_dict_rejected(self):
        with pytest.raises(SchemaError):
            check_artifact([1, 2, 3], "list.json")

    def test_load_artifact_malformed_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(SchemaError, match="malformed"):
            load_artifact(path)

    def test_load_artifact_missing_file(self, tmp_path):
        with pytest.raises(OSError):
            load_artifact(tmp_path / "absent.json")

    def test_load_artifact_kind_check(self, tmp_path):
        path = tmp_path / "s.json"
        write_json(path, summary({}))
        with pytest.raises(SchemaError, match="run_report"):
            load_artifact(path, expect_kind="run_report")


class TestDirectionPolicy:
    def test_cycles_lower_is_better(self):
        assert metric_direction("workloads.minmax.ximd_cycles") == "lower"
        assert metric_direction("sections.figures.p.skyline_height") == \
            "lower"

    def test_speedup_higher_is_better(self):
        assert metric_direction("workloads.minmax.speedup") == "higher"
        assert metric_direction("models.proto.peak_mips") == "higher"

    def test_unknown_metric_is_neutral(self):
        assert metric_direction("schedules.0.result") == "neutral"

    def test_timing_paths(self):
        assert is_timing_path("timing.metrics.sim.seconds")
        assert not is_timing_path("workloads.minmax.ximd_cycles")

    def test_flatten_skips_bookkeeping_and_strings(self):
        flat = flatten_numeric({"schema_version": 1, "kind": "x",
                                "a": {"b": 2, "note": "text", "ok": True}})
        assert flat == {"a.b": 2}

    def test_markers_match_whole_tokens_only(self):
        """Regression: substring matching misclassified leaves that
        merely *contain* a marker ('installed' ~ 'stall', 'recycles' ~
        'cycles'); anchored token matching must leave them neutral."""
        assert metric_direction("sections.x.installed") == "neutral"
        assert metric_direction("sections.x.recycles") == "neutral"
        assert metric_direction("sections.x.bankchips_note") == "neutral"

    def test_cycle_time_judged_by_its_own_marker(self):
        """'cycle_time_ns' must match the cycle_time marker, not fall
        through to 'cycles' (token 'cycle' != token 'cycles')."""
        assert metric_direction("models.proto.cycle_time_ns") == "lower"
        assert metric_direction("w.m.ximd_cycles") == "lower"
        # a per-cycle rate is not a cycle count: the 'cycles' marker
        # must not fire on the singular 'cycle' token
        assert metric_direction("models.x.ns_per_cycle") == "neutral"

    def test_stall_class_leaves_still_match(self):
        """Multi-token leaves keep matching their anchored markers."""
        assert metric_direction("stall_mix.0.sync_wait") == "lower"
        assert metric_direction("stall_mix.0.halted") == "lower"
        assert metric_direction("stall_mix.0.branch_resolve") == "lower"

    def test_energy_metrics_lower_is_better(self):
        for leaf in ("ximd_energy_pj", "vliw_energy_pj", "energy_pj",
                     "total_energy_pj", "energy_per_cycle_pj",
                     "minmax_n64_energy_pj"):
            assert metric_direction(f"sections.models.x.{leaf}") == \
                "lower", leaf


class TestDiff:
    def test_equal_artifacts_are_identical(self):
        result = diff_artifacts(summary({"minmax": dict(MINMAX)}),
                                summary({"minmax": dict(MINMAX)}))
        assert result.identical
        assert not result.regressions
        assert "no differences" in result.render_text()

    def test_more_cycles_is_a_regression(self):
        worse = dict(MINMAX, ximd_cycles=250)
        result = diff_artifacts(summary({"minmax": dict(MINMAX)}),
                                summary({"minmax": worse}))
        paths = [d.path for d in result.regressions]
        assert paths == ["sections.workloads.minmax.ximd_cycles"]
        assert "REGRESSED" in result.render_text()

    def test_less_speedup_is_a_regression(self):
        worse = dict(MINMAX, speedup=1.10)
        result = diff_artifacts(summary({"minmax": dict(MINMAX)}),
                                summary({"minmax": worse}))
        assert [d.path for d in result.regressions] == \
            ["sections.workloads.minmax.speedup"]

    def test_fewer_cycles_is_an_improvement(self):
        better = dict(MINMAX, ximd_cycles=150)
        result = diff_artifacts(summary({"minmax": dict(MINMAX)}),
                                summary({"minmax": better}))
        assert not result.regressions
        assert [d.path for d in result.improvements] == \
            ["sections.workloads.minmax.ximd_cycles"]

    def test_tolerance_forgives_small_worsening(self):
        slightly_worse = dict(MINMAX, ximd_cycles=196)   # +1.6%
        baseline = summary({"minmax": dict(MINMAX)})
        candidate = summary({"minmax": slightly_worse})
        assert diff_artifacts(baseline, candidate).regressions
        assert not diff_artifacts(baseline, candidate,
                                  tolerance=0.05).regressions

    def test_timing_excluded_by_default_and_never_blocking(self):
        baseline = summary({"minmax": dict(MINMAX)},
                           timing={"suite_seconds": 1.0})
        candidate = summary({"minmax": dict(MINMAX)},
                            timing={"suite_seconds": 9.0})
        assert diff_artifacts(baseline, candidate).identical
        with_timing = diff_artifacts(baseline, candidate,
                                     include_timing=True)
        assert not with_timing.regressions          # blocking set is empty
        assert with_timing.timing_regressions       # but it is reported

    def test_zero_baseline_blocks_at_any_relative_tolerance(self):
        """Regression: 0 -> epsilon has infinite relative change, so a
        purely relative tolerance can never forgive it."""
        delta = MetricDelta("s.w.barrier_cycles", 0, 1)
        assert delta.relative_change() == float("inf")
        assert delta.regressed(tolerance=0.5)
        assert delta.regressed(tolerance=1e9)

    def test_abs_tolerance_forgives_zero_baseline_epsilon(self):
        delta = MetricDelta("s.w.barrier_cycles", 0, 1)
        assert not delta.regressed(abs_tolerance=1.0)
        assert delta.regressed(abs_tolerance=0.5)
        # the floor applies to nonzero baselines too
        small = MetricDelta("s.w.ximd_cycles", 193, 194)
        assert small.regressed()
        assert not small.regressed(abs_tolerance=2.0)

    def test_abs_tolerance_through_diff_artifacts(self):
        baseline = summary({"m": dict(MINMAX, barrier_cycles=0)})
        candidate = summary({"m": dict(MINMAX, barrier_cycles=1)})
        assert diff_artifacts(baseline, candidate,
                              tolerance=0.5).regressions
        result = diff_artifacts(baseline, candidate, abs_tolerance=1.0)
        assert not result.regressions
        assert "abs floor" in result.render_text()

    def test_per_metric_tolerance_overrides_default(self):
        baseline = summary({"m": dict(MINMAX, skyline_height=10)})
        candidate = summary({"m": dict(MINMAX, skyline_height=11)})
        assert diff_artifacts(baseline, candidate).regressions
        result = diff_artifacts(baseline, candidate,
                                per_metric={"skyline_height": 0.15})
        assert not result.regressions
        # the override is scoped to its leaf: cycles still block
        worse = summary({"m": dict(MINMAX, skyline_height=11,
                                   ximd_cycles=999)})
        scoped = diff_artifacts(baseline, worse,
                                per_metric={"skyline_height": 0.15})
        assert [d.path for d in scoped.regressions] == \
            ["sections.workloads.m.ximd_cycles"]

    def test_workload_mismatch_raises(self):
        with pytest.raises(WorkloadMismatchError, match="minmax"):
            diff_artifacts(summary({"minmax": dict(MINMAX)}),
                           summary({"bitcount": dict(MINMAX)}))

    def test_workload_mismatch_tolerated_when_asked(self):
        result = diff_artifacts(
            summary({"minmax": dict(MINMAX)}),
            summary({"minmax": dict(MINMAX), "bitcount": dict(MINMAX)}),
            require_matching_workloads=False)
        assert result.only_after

    def test_incomparable_kinds_rejected(self):
        report = {"schema_version": SCHEMA_VERSION, "kind": "run_report",
                  "machine": "ximd", "n_fus": 4, "cycles": 10}
        with pytest.raises(SchemaError, match="cannot diff"):
            diff_artifacts(report, summary({"minmax": dict(MINMAX)}))

    def test_summary_comparable_against_history_record(self):
        record = make_record({"workloads": {"minmax": dict(MINMAX)}},
                             git_sha="abc123")
        result = diff_artifacts(summary({"minmax": dict(MINMAX)}), record)
        assert result.identical


class TestHistory:
    def test_records_are_deterministic(self):
        a = make_record({"workloads": {"m": {"speedup": 2.0}}}, "sha1")
        b = make_record({"workloads": {"m": {"speedup": 2.0}}}, "sha1")
        assert json.dumps(a, sort_keys=True) == json.dumps(b,
                                                           sort_keys=True)
        assert "timing" not in json.dumps(a)

    def test_append_and_dedupe(self, tmp_path):
        ledger = tmp_path / "h.jsonl"
        record = make_record({"workloads": {"m": {"speedup": 2.0}}}, "sha1")
        assert append_record(ledger, record) is True
        assert append_record(ledger, record) is False     # exact dupe
        changed = make_record({"workloads": {"m": {"speedup": 2.1}}},
                              "sha2")
        assert append_record(ledger, changed) is True
        records = read_history(ledger)
        assert len(records) == 2
        assert latest_record(ledger)["git_sha"] == "sha2"

    def test_dedupe_scans_the_whole_ledger(self, tmp_path):
        """Regression: dedupe checked only the final line, so replaying
        an older record after a newer one landed re-appended it."""
        ledger = tmp_path / "h.jsonl"
        first = make_record({"workloads": {"m": {"speedup": 2.0}}}, "sha1")
        second = make_record({"workloads": {"m": {"speedup": 2.1}}}, "sha2")
        assert append_record(ledger, first) is True
        assert append_record(ledger, second) is True
        assert append_record(ledger, first) is False   # not the last line
        assert len(read_history(ledger)) == 2

    def test_read_rejects_foreign_records(self, tmp_path):
        ledger = tmp_path / "h.jsonl"
        ledger.write_text(json.dumps(summary({})) + "\n")
        with pytest.raises(SchemaError, match="bench_history"):
            read_history(ledger)

    def test_latest_of_empty_ledger_raises(self, tmp_path):
        ledger = tmp_path / "empty.jsonl"
        ledger.write_text("")
        with pytest.raises(SchemaError, match="empty"):
            latest_record(ledger)

    def test_trend_renders_sparkline(self):
        records = [
            make_record({"workloads": {"m": {"speedup": s,
                                             "ximd_cycles": c}}},
                        f"sha{i}")
            for i, (s, c) in enumerate([(1.5, 200), (1.7, 190),
                                        (1.9, 180)])]
        text = render_trend(records)
        assert "workloads/m" in text
        assert "speedup" in text and "ximd_cycles" in text
        assert "3 records" in text


class TestHistoryTiming:
    """Wall-clock throughput rides along in records but never affects
    the dedupe identity (E14)."""

    SECTIONS = {"workloads": {"m": {"speedup": 2.0}}}

    def _timed(self, kcps):
        return make_record(self.SECTIONS, "sha1",
                           timing={"lr": {"fast_kcycles_per_sec": kcps}})

    def test_timing_stored_under_separate_key(self):
        record = self._timed(170.0)
        assert record["timing"]["lr"]["fast_kcycles_per_sec"] == 170.0
        assert "timing" not in record["sections"]

    def test_dedupe_ignores_timing_wobble(self, tmp_path):
        ledger = tmp_path / "h.jsonl"
        assert append_record(ledger, self._timed(170.0)) is True
        # same deterministic core, different wall clock: still a dupe
        assert append_record(ledger, self._timed(99.9)) is False
        assert append_record(ledger, make_record(self.SECTIONS,
                                                 "sha1")) is False
        assert len(read_history(ledger)) == 1

    def test_record_sections_folds_timing_in(self):
        sections = record_sections(self._timed(170.0))
        assert sections["timing"]["lr"]["fast_kcycles_per_sec"] == 170.0
        assert sections["workloads"]["m"]["speedup"] == 2.0
        # records without timing are unchanged
        assert "timing" not in record_sections(
            make_record(self.SECTIONS, "sha1"))

    def test_series_reads_the_timing_pseudo_section(self):
        records = [self._timed(kcps) for kcps in (100.0, 150.0)]
        assert series(records, "timing", "lr",
                      "fast_kcycles_per_sec") == [100.0, 150.0]

    def test_trend_includes_throughput_metric(self):
        records = [self._timed(100.0),
                   make_record({"workloads": {"m": {"speedup": 2.1}}},
                               "sha2",
                               timing={"lr": {"fast_kcycles_per_sec":
                                              150.0}})]
        text = render_trend(records, metrics=["fast_kcycles_per_sec"])
        assert "timing/lr" in text


class TestCalibration:
    def _records(self, speedups, extra=None):
        records = []
        for i, s in enumerate(speedups):
            sections = {"workloads": {"m": {"speedup": s,
                                            "ximd_cycles": 200}}}
            if extra:
                sections.update(extra)
            records.append(make_record(sections, f"sha{i}"))
        return records

    def test_varying_metric_gets_a_leaf_allowance(self):
        # spread around mean 2.0 is 0.1 -> 5%; margin 2x -> 10%
        table = calibrate_tolerances(self._records([1.9, 2.0, 2.1]))
        assert table["kind"] == "tolerance_table"
        assert table["metrics"]["speedup"] == pytest.approx(0.1)

    def test_constant_metric_stays_exact(self):
        table = calibrate_tolerances(self._records([2.0, 2.0, 2.0]))
        assert "speedup" not in table["metrics"]
        assert "ximd_cycles" not in table["metrics"]
        assert table["default_tolerance"] == 0.0

    def test_zero_mean_variance_feeds_abs_floor(self):
        records = [
            make_record({"workloads": {"m": {"drift": v}}}, f"sha{i}")
            for i, v in enumerate([-0.001, 0.001])]
        table = calibrate_tolerances(records)
        assert "drift" not in table["metrics"]
        assert table["abs_tolerance"] == pytest.approx(0.002)

    def test_timing_paths_are_excluded(self):
        records = [
            make_record({"timing": {"lr": {"fast_kcycles_per_sec": v}}},
                        f"sha{i}")
            for i, v in enumerate([100.0, 900.0])]
        table = calibrate_tolerances(records)
        assert table["metrics"] == {}

    def test_margin_must_be_positive(self):
        with pytest.raises(ValueError, match="margin"):
            calibrate_tolerances(self._records([1.9, 2.1]), margin=0)

    def test_emitted_table_loads_and_gates(self, tmp_path):
        table = calibrate_tolerances(self._records([1.9, 2.0, 2.1]),
                                     description="calibrated")
        path = tmp_path / "tolerances.json"
        write_json(path, table)
        loaded = load_tolerance_table(path)
        assert loaded["metrics"]["speedup"] == pytest.approx(0.1)


class TestCliGateCalibrate:
    def _ledger(self, tmp_path, speedups):
        ledger = tmp_path / "h.jsonl"
        for i, s in enumerate(speedups):
            append_record(ledger, make_record(
                {"workloads": {"m": {"speedup": s}}}, f"sha{i}"))
        return ledger

    def test_calibrate_writes_table(self, tmp_path, capsys):
        ledger = self._ledger(tmp_path, [1.9, 2.0, 2.1])
        out = tmp_path / "tolerances.json"
        assert obs_main(["gate", "--calibrate",
                         "--history", str(ledger),
                         "--calibrate-output", str(out)]) == 0
        table = load_tolerance_table(out)
        assert table["metrics"]["speedup"] == pytest.approx(0.1)
        assert "calibrated" in capsys.readouterr().out

    def test_calibrate_max_merges_hand_set_allowances(self, tmp_path):
        ledger = self._ledger(tmp_path, [1.9, 2.0, 2.1])
        out = tmp_path / "tolerances.json"
        write_json(out, {
            "schema_version": SCHEMA_VERSION, "kind": "tolerance_table",
            "description": "hand-tuned", "default_tolerance": 0.0,
            "abs_tolerance": 0.5,
            "metrics": {"speedup": 0.25, "skyline_height": 0.1}})
        assert obs_main(["gate", "--calibrate",
                         "--history", str(ledger),
                         "--calibrate-output", str(out)]) == 0
        table = load_tolerance_table(out)
        assert table["metrics"]["speedup"] == 0.25        # hand floor wins
        assert table["metrics"]["skyline_height"] == 0.1  # preserved
        assert table["abs_tolerance"] == 0.5
        raw = json.loads(out.read_text())
        assert raw["description"] == "hand-tuned"

    def test_calibrate_fresh_discards_hand_set_entries(self, tmp_path):
        ledger = self._ledger(tmp_path, [1.9, 2.0, 2.1])
        out = tmp_path / "tolerances.json"
        write_json(out, {
            "schema_version": SCHEMA_VERSION, "kind": "tolerance_table",
            "default_tolerance": 0.0, "abs_tolerance": 0.5,
            "metrics": {"skyline_height": 0.1}})
        assert obs_main(["gate", "--calibrate", "--calibrate-fresh",
                         "--history", str(ledger),
                         "--calibrate-output", str(out)]) == 0
        table = load_tolerance_table(out)
        assert "skyline_height" not in table["metrics"]
        assert table["abs_tolerance"] == 0.0

    def test_calibrate_needs_two_records(self, tmp_path, capsys):
        ledger = self._ledger(tmp_path, [2.0])
        assert obs_main(["gate", "--calibrate",
                         "--history", str(ledger),
                         "--calibrate-output",
                         str(tmp_path / "t.json")]) == 1
        assert "at least 2" in capsys.readouterr().err

    def test_gate_without_baseline_or_calibrate_errors(self, capsys):
        assert obs_main(["gate"]) == 1
        assert "--baseline" in capsys.readouterr().err


class TestDashboard:
    def report_dict(self):
        return RunReport.from_events(minmax_events()).to_dict(
            include_timing=False)

    def test_renders_offline_with_attribution(self):
        page = render_dashboard(self.report_dict(), title="minmax run")
        assert page.startswith("<!DOCTYPE html>")
        assert "minmax run" in page
        assert "Per-FU cycle attribution" in page
        for name in FU_CLASS_NAMES.values():
            assert name in page
        # self-contained: no external scripts, styles, or images
        assert "http://" not in page and "https://" not in page

    def test_history_panel(self, tmp_path):
        records = [make_record({"workloads": {"m": {"speedup": s}}},
                               f"sha{i}")
                   for i, s in enumerate([1.5, 1.8])]
        page = render_dashboard(self.report_dict(), history=records)
        assert "Benchmark history" in page

    def test_write_dashboard(self, tmp_path):
        path = write_dashboard(tmp_path / "d.html", self.report_dict())
        assert path.read_text().startswith("<!DOCTYPE html>")


class TestCliDiff:
    def test_equal_files_exit_zero(self, tmp_path, capsys):
        a = write_json(tmp_path / "a.json", summary({"m": dict(MINMAX)}))
        b = write_json(tmp_path / "b.json", summary({"m": dict(MINMAX)}))
        assert obs_main(["diff", a, b]) == 0
        assert "no differences" in capsys.readouterr().out

    def test_regression_exits_two_with_table(self, tmp_path, capsys):
        a = write_json(tmp_path / "a.json", summary({"m": dict(MINMAX)}))
        b = write_json(tmp_path / "b.json",
                       summary({"m": dict(MINMAX, ximd_cycles=999)}))
        assert obs_main(["diff", a, b]) == EXIT_REGRESSION
        captured = capsys.readouterr()
        assert "REGRESSED" in captured.out
        assert "ximd_cycles" in captured.out

    def test_tolerance_flag(self, tmp_path):
        a = write_json(tmp_path / "a.json", summary({"m": dict(MINMAX)}))
        b = write_json(tmp_path / "b.json",
                       summary({"m": dict(MINMAX, ximd_cycles=196)}))
        assert obs_main(["diff", a, b]) == EXIT_REGRESSION
        assert obs_main(["diff", "--tolerance", "0.05", a, b]) == 0

    def test_mismatched_workloads_exit_one(self, tmp_path, capsys):
        a = write_json(tmp_path / "a.json", summary({"m": dict(MINMAX)}))
        b = write_json(tmp_path / "b.json", summary({"x": dict(MINMAX)}))
        assert obs_main(["diff", a, b]) == 1
        assert "workload sets differ" in capsys.readouterr().err
        assert obs_main(["diff", "--any-workloads", a, b]) == 0

    def test_missing_file_exits_one(self, tmp_path, capsys):
        a = write_json(tmp_path / "a.json", summary({"m": dict(MINMAX)}))
        assert obs_main(["diff", a, str(tmp_path / "absent.json")]) == 1
        assert "error:" in capsys.readouterr().err

    def test_malformed_json_exits_one(self, tmp_path, capsys):
        a = write_json(tmp_path / "a.json", summary({"m": dict(MINMAX)}))
        broken = tmp_path / "broken.json"
        broken.write_text("{not json")
        assert obs_main(["diff", a, str(broken)]) == 1
        assert "malformed" in capsys.readouterr().err

    def test_unversioned_artifact_exits_one(self, tmp_path, capsys):
        a = write_json(tmp_path / "a.json", summary({"m": dict(MINMAX)}))
        old = write_json(tmp_path / "old.json", {"workloads": {}})
        assert obs_main(["diff", a, old]) == 1
        assert "schema_version" in capsys.readouterr().err

    def test_json_output(self, tmp_path, capsys):
        a = write_json(tmp_path / "a.json", summary({"m": dict(MINMAX)}))
        b = write_json(tmp_path / "b.json",
                       summary({"m": dict(MINMAX, ximd_cycles=100)}))
        assert obs_main(["diff", "--json", a, b]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["improvements"]


class TestCliGate:
    def test_gate_passes_on_equal(self, tmp_path, capsys):
        base = write_json(tmp_path / "base.json",
                          summary({"m": dict(MINMAX)}))
        cand = write_json(tmp_path / "cand.json",
                          summary({"m": dict(MINMAX)}))
        assert obs_main(["gate", "--baseline", base,
                         "--candidate", cand]) == 0
        assert "gate passed" in capsys.readouterr().out

    def test_gate_fails_on_regression(self, tmp_path, capsys):
        base = write_json(tmp_path / "base.json",
                          summary({"m": dict(MINMAX)}))
        cand = write_json(tmp_path / "cand.json",
                          summary({"m": dict(MINMAX, speedup=1.0)}))
        assert obs_main(["gate", "--baseline", base,
                         "--candidate", cand]) == EXIT_REGRESSION
        assert "GATE FAILED" in capsys.readouterr().err

    def test_gate_wall_time_warns_but_passes(self, tmp_path, capsys):
        base = write_json(tmp_path / "base.json",
                          summary({"m": dict(MINMAX)},
                                  timing={"suite_seconds": 1.0}))
        cand = write_json(tmp_path / "cand.json",
                          summary({"m": dict(MINMAX)},
                                  timing={"suite_seconds": 9.0}))
        assert obs_main(["gate", "--baseline", base,
                         "--candidate", cand]) == 0
        assert "non-blocking" in capsys.readouterr().err

    def test_gate_consumes_latest_history_record(self, tmp_path, capsys):
        base = write_json(tmp_path / "base.json",
                          summary({"m": dict(MINMAX)}))
        ledger = tmp_path / "h.jsonl"
        append_record(ledger, make_record(
            {"workloads": {"m": dict(MINMAX, ximd_cycles=999)}}, "old"))
        append_record(ledger, make_record(
            {"workloads": {"m": dict(MINMAX)}}, "new"))
        assert obs_main(["gate", "--baseline", base,
                         "--history", str(ledger)]) == 0
        assert "sha new" in capsys.readouterr().out

    def test_gate_missing_baseline_exits_one(self, tmp_path, capsys):
        assert obs_main(["gate", "--baseline",
                         str(tmp_path / "absent.json")]) == 1
        assert "error:" in capsys.readouterr().err

    def test_gate_abs_tolerance_unblocks_zero_baseline(self, tmp_path,
                                                       capsys):
        """Regression: a 0 -> 1 move blocked at every --tolerance; the
        absolute floor is the only way to wave it through."""
        base = write_json(tmp_path / "base.json",
                          summary({"m": dict(MINMAX, barrier_cycles=0)}))
        cand = write_json(tmp_path / "cand.json",
                          summary({"m": dict(MINMAX, barrier_cycles=1)}))
        assert obs_main(["gate", "--baseline", base, "--candidate", cand,
                         "--tolerance", "0.99"]) == EXIT_REGRESSION
        capsys.readouterr()
        assert obs_main(["gate", "--baseline", base, "--candidate", cand,
                         "--abs-tolerance", "1.5"]) == 0
        assert "gate passed" in capsys.readouterr().out

    def test_gate_energy_regression_blocks(self, tmp_path, capsys):
        base = write_json(tmp_path / "base.json",
                          summary({"m": dict(MINMAX,
                                             ximd_energy_pj=1000.0)}))
        cand = write_json(tmp_path / "cand.json",
                          summary({"m": dict(MINMAX,
                                             ximd_energy_pj=1010.0)}))
        assert obs_main(["gate", "--baseline", base,
                         "--candidate", cand]) == EXIT_REGRESSION
        assert "ximd_energy_pj" in capsys.readouterr().out


def tolerance_table(metrics=None, default=0.0, abs_tol=0.0):
    return {"schema_version": SCHEMA_VERSION, "kind": "tolerance_table",
            "default_tolerance": default, "abs_tolerance": abs_tol,
            "metrics": dict(metrics or {})}


class TestToleranceTable:
    def test_load_normalizes_fields(self, tmp_path):
        path = write_json(tmp_path / "t.json",
                          tolerance_table({"skyline_height": 0.1},
                                          default=0.02, abs_tol=0.5))
        table = load_tolerance_table(path)
        assert table == {"default_tolerance": 0.02, "abs_tolerance": 0.5,
                         "metrics": {"skyline_height": 0.1}}

    def test_load_rejects_wrong_kind(self, tmp_path):
        path = write_json(tmp_path / "s.json", summary({}))
        with pytest.raises(SchemaError, match="tolerance_table"):
            load_tolerance_table(path)

    def test_load_rejects_non_numeric_metrics(self, tmp_path):
        bad = tolerance_table()
        bad["metrics"] = {"skyline_height": "lots"}
        path = write_json(tmp_path / "t.json", bad)
        with pytest.raises(SchemaError, match="numeric"):
            load_tolerance_table(path)

    def test_gate_uses_table_overrides(self, tmp_path, capsys):
        base = write_json(tmp_path / "base.json",
                          summary({"m": dict(MINMAX, skyline_height=10)}))
        cand = write_json(tmp_path / "cand.json",
                          summary({"m": dict(MINMAX, skyline_height=11)}))
        assert obs_main(["gate", "--baseline", base,
                         "--candidate", cand]) == EXIT_REGRESSION
        capsys.readouterr()
        table = write_json(tmp_path / "tol.json",
                           tolerance_table({"skyline_height": 0.15}))
        assert obs_main(["gate", "--baseline", base, "--candidate", cand,
                         "--tolerance-table", str(table)]) == 0
        assert "gate passed" in capsys.readouterr().out

    def test_explicit_flags_beat_table_defaults(self, tmp_path, capsys):
        base = write_json(tmp_path / "base.json",
                          summary({"m": dict(MINMAX)}))
        cand = write_json(tmp_path / "cand.json",
                          summary({"m": dict(MINMAX, ximd_cycles=196)}))
        table = write_json(tmp_path / "tol.json",
                           tolerance_table(default=0.05))
        assert obs_main(["gate", "--baseline", base, "--candidate", cand,
                         "--tolerance-table", str(table)]) == 0
        capsys.readouterr()
        assert obs_main(["gate", "--baseline", base, "--candidate", cand,
                         "--tolerance-table", str(table),
                         "--tolerance", "0.0"]) == EXIT_REGRESSION

    def test_committed_table_is_loadable(self):
        import pathlib
        path = (pathlib.Path(__file__).resolve().parent.parent
                / "benchmarks" / "tolerances.json")
        table = load_tolerance_table(path)
        assert table["default_tolerance"] == 0.0
        assert table["metrics"]["ximd_energy_pj"] == 0.0
        assert table["metrics"]["skyline_height"] > 0


class TestCliHistory:
    def test_trend_table(self, tmp_path, capsys):
        ledger = tmp_path / "h.jsonl"
        for i, s in enumerate([1.5, 1.9]):
            append_record(ledger, make_record(
                {"workloads": {"m": {"speedup": s}}}, f"sha{i}"))
        assert obs_main(["history", str(ledger)]) == 0
        assert "2 records" in capsys.readouterr().out

    def test_json_dump(self, tmp_path, capsys):
        ledger = tmp_path / "h.jsonl"
        append_record(ledger, make_record(
            {"workloads": {"m": {"speedup": 1.5}}}, "sha0"))
        assert obs_main(["history", "--json", str(ledger)]) == 0
        assert json.loads(capsys.readouterr().out)[0]["git_sha"] == "sha0"

    def test_missing_ledger_exits_one(self, tmp_path, capsys):
        assert obs_main(["history", str(tmp_path / "absent.jsonl")]) == 1
        assert "error:" in capsys.readouterr().err


class TestCliHtml:
    def trace_file(self, tmp_path):
        path = tmp_path / "run.jsonl"
        from repro.obs import event_to_dict
        with open(path, "w") as stream:
            for event in minmax_events():
                stream.write(json.dumps(event_to_dict(event)) + "\n")
        return str(path)

    def test_html_from_trace(self, tmp_path, capsys):
        out = tmp_path / "dash.html"
        assert obs_main(["html", self.trace_file(tmp_path),
                         "-o", str(out)]) == 0
        assert out.read_text().startswith("<!DOCTYPE html>")

    def test_html_from_report_artifact(self, tmp_path):
        report = RunReport.from_events(minmax_events())
        artifact = tmp_path / "report.json"
        report.write_json(artifact)
        out = tmp_path / "dash.html"
        assert obs_main(["html", str(artifact), "-o", str(out)]) == 0
        assert "Per-FU cycle attribution" in out.read_text()

    def test_html_rejects_wrong_kind(self, tmp_path, capsys):
        wrong = write_json(tmp_path / "s.json", summary({}))
        assert obs_main(["html", wrong,
                         "-o", str(tmp_path / "x.html")]) == 1
        assert "run_report" in capsys.readouterr().err

    def test_html_with_history(self, tmp_path):
        ledger = tmp_path / "h.jsonl"
        append_record(ledger, make_record(
            {"workloads": {"m": {"speedup": 1.5}}}, "sha0"))
        out = tmp_path / "dash.html"
        assert obs_main(["html", self.trace_file(tmp_path),
                         "--history", str(ledger), "-o", str(out)]) == 0
        assert "Benchmark history" in out.read_text()


class TestDeterminism:
    def test_report_json_is_byte_identical(self):
        events = minmax_events()
        a = RunReport.from_events(events).to_json()
        b = RunReport.from_events(events).to_json()
        assert a == b
        assert '"timing"' not in a          # quarantined by default

    def test_timing_key_opt_in(self):
        report = RunReport.from_events(minmax_events())
        with_timing = json.loads(report.to_json(include_timing=True))
        assert "timing" in with_timing
        without = json.loads(report.to_json())
        assert "timing" not in without
        without.pop("schema_version"), with_timing.pop("schema_version")
        with_timing.pop("timing")
        assert without == with_timing

    def test_attribution_covers_every_fu_cycle(self):
        events = minmax_events()
        cycles = [e for e in events if e.kind == "cycle"]
        assert cycles
        for event in cycles:
            assert len(event.fu_class) == len(event.pcs)
            assert set(event.fu_class) <= set(FU_CLASS_NAMES)
        report = RunReport.from_events(events)
        total = sum(sum(mix.values()) for mix in report.stall_mix)
        assert total == len(cycles) * len(cycles[0].pcs)
        assert report.op_histogram                    # mnemonics tallied
        assert sum(report.op_histogram.values()) == \
            sum(mix.get("useful", 0) for mix in report.stall_mix)
