"""The paper's worked examples, validated against oracles and Figure 10."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.asm import assemble
from repro.machine import (
    TrackerKind,
    VliwMachine,
    XimdMachine,
    run_ximd,
)
from repro.workloads import (
    B_BASE,
    BITCOUNT_REGS,
    FIGURE10_DATA,
    FIGURE10_EXPECTED,
    LL12_REGS,
    MINMAX_REGS,
    TPROC_REGS,
    X_BASE,
    bitcount1_reference,
    bitcount1_source,
    bitcount_memory,
    bitcount_total_reference,
    bitcount_total_source,
    bitcount_vliw_source,
    livermore12_memory,
    livermore12_reference,
    livermore12_source,
    minmax_memory,
    minmax_reference,
    minmax_source,
    minmax_vliw_source,
    random_ints,
    random_words,
    tproc_reference,
    tproc_source,
)

i32small = st.integers(min_value=-10_000, max_value=10_000)


# ---------------------------------------------------------------------------
# Example 1: TPROC


class TestTproc:
    def run_tproc(self, a, b, c, d):
        result = run_ximd(
            assemble(tproc_source()),
            registers={TPROC_REGS["a"]: a, TPROC_REGS["b"]: b,
                       TPROC_REGS["c"]: c, TPROC_REGS["d"]: d})
        return result

    def test_paper_schedule_is_five_cycles_plus_halt(self):
        assert self.run_tproc(1, 2, 3, 4).cycles == 6

    def test_example_values(self):
        result = self.run_tproc(7, 3, -2, 11)
        assert result.register(TPROC_REGS["f"]) == tproc_reference(
            7, 3, -2, 11)

    @given(i32small, i32small, i32small, i32small)
    @settings(max_examples=40, deadline=None)
    def test_matches_reference(self, a, b, c, d):
        result = self.run_tproc(a, b, c, d)
        assert result.register(TPROC_REGS["f"]) == tproc_reference(
            a, b, c, d)

    def test_runs_identically_on_vliw(self):
        # Example 1 is VLIW-mode code: same cycles on both machines
        program = assemble(tproc_source())
        regs = {TPROC_REGS[n]: v for n, v in
                zip("abcd", (9, 8, 7, 6))}
        xm = XimdMachine(program)
        vm = VliwMachine(assemble(tproc_source()))
        for machine in (xm, vm):
            for index, value in regs.items():
                machine.regfile.poke(index, value)
        rx, rv = xm.run(100), vm.run(100)
        assert rx.cycles == rv.cycles
        assert rx.registers == rv.registers


# ---------------------------------------------------------------------------
# Example 2: MINMAX and Figure 10


def run_minmax(data, source=None, machine_cls=XimdMachine, **kw):
    program = assemble(source if source is not None
                       else minmax_source("halt"))
    machine = machine_cls(program, **kw)
    machine.regfile.poke(MINMAX_REGS["n"], len(data))
    for address, value in minmax_memory(data).items():
        machine.memory.poke(address, value)
    result = machine.run(100_000)
    return (machine.regfile.peek(MINMAX_REGS["min"]),
            machine.regfile.peek(MINMAX_REGS["max"]), result, machine)


class TestMinMax:
    def test_paper_data_set(self):
        lo, hi, result, _ = run_minmax(FIGURE10_DATA)
        assert (lo, hi) == (3, 7)

    def test_single_element(self):
        lo, hi, _, _ = run_minmax((42,))
        assert (lo, hi) == (42, 42)

    def test_two_elements(self):
        lo, hi, _, _ = run_minmax((9, -9))
        assert (lo, hi) == (-9, 9)

    def test_sorted_and_reversed(self):
        for data in ([1, 2, 3, 4, 5], [5, 4, 3, 2, 1]):
            lo, hi, _, _ = run_minmax(data)
            assert (lo, hi) == (1, 5)

    def test_all_equal(self):
        lo, hi, _, _ = run_minmax([7] * 6)
        assert (lo, hi) == (7, 7)

    @given(st.lists(i32small, min_size=1, max_size=40))
    @settings(max_examples=30, deadline=None)
    def test_matches_reference(self, data):
        lo, hi, _, _ = run_minmax(data)
        assert (lo, hi) == minmax_reference(data)

    @given(st.lists(i32small, min_size=1, max_size=25))
    @settings(max_examples=20, deadline=None)
    def test_vliw_version_matches_reference(self, data):
        lo, hi, _, _ = run_minmax(data, source=minmax_vliw_source(),
                                  machine_cls=VliwMachine)
        assert (lo, hi) == minmax_reference(data)

    def test_ximd_beats_vliw(self):
        """The paper's point: two parallel control ops per iteration."""
        data = random_ints(30, seed=11)[1:]
        _, _, rx, _ = run_minmax(data)
        _, _, rv, _ = run_minmax(data, source=minmax_vliw_source(),
                                 machine_cls=VliwMachine)
        assert rx.cycles < rv.cycles


class TestFigure10:
    """Cell-for-cell reproduction of the published address trace."""

    @pytest.fixture(scope="class")
    def trace(self):
        machine = XimdMachine(assemble(minmax_source("loop")),
                              trace=True, tracker=TrackerKind.EXACT)
        machine.regfile.poke(MINMAX_REGS["n"], len(FIGURE10_DATA))
        for address, value in minmax_memory(FIGURE10_DATA).items():
            machine.memory.poke(address, value)
        for _ in range(len(FIGURE10_EXPECTED)):
            machine.step()
        return machine.trace

    def test_cycle_count(self, trace):
        assert len(trace) == 14

    def test_addresses_match(self, trace):
        for record, (pcs, _, _) in zip(trace, FIGURE10_EXPECTED):
            assert tuple(record.pcs) == pcs, f"cycle {record.cycle}"

    def test_condition_codes_match(self, trace):
        for record, (_, cc, _) in zip(trace, FIGURE10_EXPECTED):
            assert record.condition_codes == cc, f"cycle {record.cycle}"

    def test_partitions_match(self, trace):
        for record, (_, _, partition) in zip(trace, FIGURE10_EXPECTED):
            assert record.partition_text() == partition, \
                f"cycle {record.cycle}"

    def test_fork_cycles_have_three_ssets(self, trace):
        fork_cycles = [r.cycle for r in trace if len(r.partition) == 3]
        assert fork_cycles == [3, 6, 9, 12]

    def test_heuristic_tracker_identical(self):
        machine = XimdMachine(assemble(minmax_source("loop")),
                              trace=True, tracker=TrackerKind.HEURISTIC)
        machine.regfile.poke(MINMAX_REGS["n"], len(FIGURE10_DATA))
        for address, value in minmax_memory(FIGURE10_DATA).items():
            machine.memory.poke(address, value)
        for _ in range(len(FIGURE10_EXPECTED)):
            machine.step()
        for record, (_, _, partition) in zip(machine.trace,
                                             FIGURE10_EXPECTED):
            assert record.partition_text() == partition

    def test_formatted_table_renders(self, trace):
        table = trace.format()
        assert "{0,1}{2}{3}" in table
        assert "Cycle 13" in table


# ---------------------------------------------------------------------------
# Example 3: BITCOUNT1


def run_bitcount(data, n, source):
    machine = XimdMachine(assemble(source))
    machine.regfile.poke(BITCOUNT_REGS["n"], n)
    for address, value in bitcount_memory(data).items():
        machine.memory.poke(address, value)
    result = machine.run(2_000_000)
    got = {k: machine.memory.peek(B_BASE + k) for k in range(n + 1)}
    return got, result


class TestBitcount:
    def test_small_n_goes_through_cleanup(self):
        data = random_words(5, seed=1)
        got, _ = run_bitcount(data, 5, bitcount1_source())
        assert got == bitcount1_reference(data, 5)

    def test_boundary_n8_is_all_cleanup(self):
        data = random_words(8, seed=2)
        got, _ = run_bitcount(data, 8, bitcount1_source())
        assert got == bitcount1_reference(data, 8)

    def test_boundary_n9_enters_main_loop(self):
        data = random_words(9, seed=3)
        got, _ = run_bitcount(data, 9, bitcount1_source())
        assert got == bitcount1_reference(data, 9)

    @pytest.mark.parametrize("n", [10, 12, 13, 16, 21, 32])
    def test_various_lengths(self, n):
        data = random_words(n, seed=n)
        got, _ = run_bitcount(data, n, bitcount1_source())
        assert got == bitcount1_reference(data, n)

    def test_zero_words(self):
        data = [0] + [0] * 12
        got, _ = run_bitcount(data, 12, bitcount1_source())
        assert got == bitcount1_reference(data, 12)

    def test_all_ones_words(self):
        data = [0] + [0xFFFFFFFF] * 12
        got, _ = run_bitcount(data, 12, bitcount1_source())
        assert got == bitcount1_reference(data, 12)

    def test_total_variant_is_running_total(self):
        data = random_words(14, seed=9)
        got, _ = run_bitcount(data, 14, bitcount_total_source())
        assert got == bitcount_total_reference(data, 14)

    def test_vliw_version_matches_total_reference(self):
        data = random_words(11, seed=5)
        machine = VliwMachine(assemble(bitcount_vliw_source()))
        machine.regfile.poke(BITCOUNT_REGS["n"], 11)
        for address, value in bitcount_memory(data).items():
            machine.memory.poke(address, value)
        machine.run(2_000_000)
        got = {k: machine.memory.peek(B_BASE + k) for k in range(12)}
        assert got == bitcount_total_reference(data, 11)

    def test_ximd_beats_vliw(self):
        data = random_words(16, seed=21)
        _, rx = run_bitcount(data, 16, bitcount_total_source())
        machine = VliwMachine(assemble(bitcount_vliw_source()))
        machine.regfile.poke(BITCOUNT_REGS["n"], 16)
        for address, value in bitcount_memory(data).items():
            machine.memory.poke(address, value)
        rv = machine.run(2_000_000)
        assert rx.cycles < rv.cycles

    def test_barrier_produces_fork_then_join(self):
        """Figure 11's shape: one SSET, a fork into four, a barrier
        join back to one."""
        data = random_words(12, seed=4)
        program = assemble(bitcount1_source())
        machine = XimdMachine(program, trace=True,
                              tracker=TrackerKind.ADAPTIVE)
        machine.regfile.poke(BITCOUNT_REGS["n"], 12)
        for address, value in bitcount_memory(data).items():
            machine.memory.poke(address, value)
        machine.run(2_000_000)
        sizes = [len(r.partition) for r in machine.trace]
        assert sizes[0] == 1          # single SSET at startup
        assert max(sizes) == 4        # full four-way fork
        # after every fork the streams rejoin (barrier or cleanup)
        joins = [i for i in range(1, len(sizes))
                 if sizes[i] == 1 and sizes[i - 1] > 1]
        assert joins


# ---------------------------------------------------------------------------
# Livermore Loop 12 (hand-pipelined version)


class TestLivermore12:
    @pytest.mark.parametrize("n", [1, 2, 3, 7, 20])
    def test_matches_reference(self, n):
        y = random_ints(n + 1, seed=n)
        machine = XimdMachine(assemble(livermore12_source()))
        machine.regfile.poke(LL12_REGS["n"], n)
        for address, value in livermore12_memory(y).items():
            machine.memory.poke(address, value)
        machine.run(100_000)
        got = [0] + [machine.memory.peek(X_BASE + k)
                     for k in range(1, n + 1)]
        assert got == livermore12_reference(y, n)

    def test_kernel_is_two_cycles_per_iteration(self):
        y = random_ints(101, seed=0)
        machine = XimdMachine(assemble(livermore12_source()))
        machine.regfile.poke(LL12_REGS["n"], 100)
        for address, value in livermore12_memory(y).items():
            machine.memory.poke(address, value)
        result = machine.run(100_000)
        # II = 2 software pipeline: 2n + small constant
        assert result.cycles <= 2 * 100 + 8

    def test_identical_on_vliw_machine(self):
        """Software-pipelined VLIW-mode code: XIMD == VLIW exactly."""
        n = 30
        y = random_ints(n + 1, seed=3)
        runs = []
        for cls in (XimdMachine, VliwMachine):
            machine = cls(assemble(livermore12_source()))
            machine.regfile.poke(LL12_REGS["n"], n)
            for address, value in livermore12_memory(y).items():
                machine.memory.poke(address, value)
            runs.append(machine.run(100_000))
        assert runs[0].cycles == runs[1].cycles
        assert runs[0].registers == runs[1].registers
