"""Tests for SSET partition tracking (the section 2.4 formalism)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.asm import assemble
from repro.machine import (
    TrackerKind,
    XimdMachine,
    format_partition,
    is_valid_partition,
    normalize_partition,
    parse_partition,
    refines,
)


class TestNotation:
    def test_format(self):
        assert format_partition(((0, 1), (2,), (3, 6, 7), (4, 5))) == \
            "{0,1}{2}{3,6,7}{4,5}"

    def test_parse(self):
        assert parse_partition("{0,1}{2}{3,6,7}{4,5}") == \
            ((0, 1), (2,), (3, 6, 7), (4, 5))

    def test_parse_normalizes_order(self):
        assert parse_partition("{4,5}{1,0}") == ((0, 1), (4, 5))

    def test_roundtrip(self):
        for text in ("{0,1,2,3,4,5,6,7}", "{0}{1,2,3}{4}{5,6,7}"):
            assert format_partition(parse_partition(text)) == text

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_partition("0,1}{2")
        with pytest.raises(ValueError):
            parse_partition("{}")

    def test_validity(self):
        assert is_valid_partition(((0, 1), (2,)), 3)
        assert not is_valid_partition(((0, 1),), 3)        # missing 2
        assert not is_valid_partition(((0,), (0, 1)), 2)   # duplicate 0

    def test_refinement(self):
        fine = ((0,), (1,), (2, 3))
        coarse = ((0, 1), (2, 3))
        assert refines(fine, coarse)
        assert not refines(coarse, fine)
        assert refines(coarse, coarse)


@st.composite
def _partitions(draw):
    """A normalized partition of some 1..10-FU machine."""
    n = draw(st.integers(min_value=1, max_value=10))
    labels = draw(st.lists(st.integers(0, n - 1), min_size=n, max_size=n))
    groups = {}
    for fu, label in enumerate(labels):
        groups.setdefault(label, []).append(fu)
    return normalize_partition(groups.values())


class TestNotationRoundTrip:
    @given(partition=_partitions(), rng=st.randoms())
    @settings(max_examples=200, deadline=None)
    def test_format_parse_normalize_round_trip(self, partition, rng):
        assert is_valid_partition(partition, sum(map(len, partition)))
        assert parse_partition(format_partition(partition)) == partition
        # scrambled member and SSET order must normalize back — both
        # through normalize_partition and through the text notation
        scrambled = [list(sset) for sset in partition]
        for sset in scrambled:
            rng.shuffle(sset)
        rng.shuffle(scrambled)
        assert normalize_partition(scrambled) == partition
        assert parse_partition(format_partition(
            tuple(tuple(sset) for sset in scrambled))) == partition


def partitions_of(machine):
    machine.run(10_000)
    return [record.partition for record in machine.trace]


def tracked(source, kind):
    return XimdMachine(assemble(source), trace=True, tracker=kind)


FORK_JOIN = """
.width 2
// both FUs branch on the same condition: stay one SSET
-
| -> . ; lt #1,#2
| -> . ; nop
-
| if cc0 @02, @02 ; nop
| if cc0 @02, @02 ; nop
// data-dependent split: different conditions
-
| if cc0 @03, @04 ; nop
| if cc1 @03, @04 ; gt #1,#2
// reconverge unconditionally
-
| -> @05 ; nop
| -> @05 ; nop
-
| -> @05 ; nop
| -> @05 ; nop
.org @05
-
=> halt
| nop
| nop
"""


class TestExactTracker:
    def test_identical_branches_keep_one_sset(self):
        parts = partitions_of(tracked(FORK_JOIN, TrackerKind.EXACT))
        assert parts[0] == ((0, 1),)
        assert parts[1] == ((0, 1),)
        assert parts[2] == ((0, 1),)   # branching cycle itself

    def test_different_conditions_split(self):
        parts = partitions_of(tracked(FORK_JOIN, TrackerKind.EXACT))
        assert parts[3] == ((0,), (1,))

    def test_unconditional_reconvergence_joins(self):
        parts = partitions_of(tracked(FORK_JOIN, TrackerKind.EXACT))
        assert parts[4] == ((0, 1),)

    def test_same_address_is_not_same_sset(self):
        # the Figure 10 subtlety: both FUs at one address can still be
        # distinct SSETs when they arrived by data-dependent branches
        source = """
.width 2
-
| if cc0 @01, @02 ; nop
| if cc1 @01, @02 ; nop
-
| -> @03 ; nop
| -> @03 ; nop
-
| -> @03 ; nop
| -> @03 ; nop
.org @03
-
=> halt
| nop
| nop
"""
        parts = partitions_of(tracked(source, TrackerKind.EXACT))
        assert parts[1] == ((0,), (1,))  # wherever they landed

    def test_all_partitions_valid(self):
        for kind in (TrackerKind.EXACT, TrackerKind.HEURISTIC,
                     TrackerKind.ADAPTIVE):
            for partition in partitions_of(tracked(FORK_JOIN, kind)):
                assert is_valid_partition(partition, 2)


class TestHeuristicAgreement:
    @pytest.mark.parametrize("source", [FORK_JOIN])
    def test_matches_exact_on_structured_code(self, source):
        exact = partitions_of(tracked(source, TrackerKind.EXACT))
        heuristic = partitions_of(tracked(source, TrackerKind.HEURISTIC))
        assert exact == heuristic

    def test_heuristic_barrier_join(self):
        source = """
.width 2
-
| -> @02 ; nop
| if cc1 @01, @02 ; nop
-
| empty
| -> @02 ; nop
-
| if all @03, @02 ; nop ; done
| if all @03, @02 ; nop ; done
-
=> halt
| nop
| nop
"""
        heuristic = partitions_of(tracked(source, TrackerKind.HEURISTIC))
        assert heuristic[-1] == ((0, 1),)


class TestMinMaxFigure10:
    """The canonical validation: Figure 10, via the workloads module
    (the cell-for-cell comparison lives in test_paper_examples; here we
    check tracker-vs-tracker agreement)."""

    def test_exact_and_heuristic_agree(self):
        from repro.workloads import (FIGURE10_DATA, MINMAX_REGS,
                                     minmax_memory, minmax_source)
        results = []
        for kind in (TrackerKind.EXACT, TrackerKind.HEURISTIC):
            machine = XimdMachine(assemble(minmax_source("loop")),
                                  trace=True, tracker=kind)
            machine.regfile.poke(MINMAX_REGS["n"], len(FIGURE10_DATA))
            for address, value in minmax_memory(FIGURE10_DATA).items():
                machine.memory.poke(address, value)
            for _ in range(14):
                machine.step()
            results.append([r.partition for r in machine.trace])
        assert results[0] == results[1]
