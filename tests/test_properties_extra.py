"""Extra property tests: trackers on random programs, generators,
trace rendering, and disassembler round-trips over random programs."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.asm import assemble, disassemble
from repro.isa import (
    Condition,
    Const,
    ControlOp,
    DataOp,
    Parcel,
    Reg,
    SyncValue,
    lookup,
)
from repro.machine import (
    Program,
    TrackerKind,
    XimdMachine,
    is_valid_partition,
    research_config,
    run_ximd,
)
from repro.workloads import (
    branchy_loop_sources,
    popcount32,
    random_dag_source,
    random_ints,
    random_words,
)


def lenient(width):
    """Random programs may hit the architecture's undefined same-cycle
    write conflicts; tolerate them (last FU wins) so the properties
    under test — tracking, rendering, round-trips — are what fails."""
    return research_config(width, detect_register_conflicts=False,
                           detect_memory_conflicts=False)

# ---------------------------------------------------------------------------
# random XIMD programs: every FU gets a short column of forward-jumping
# parcels with random conditional branches; programs always terminate.


@st.composite
def random_programs(draw):
    n_fus = draw(st.integers(min_value=1, max_value=3))
    length = draw(st.integers(min_value=2, max_value=6))
    columns = []
    for fu in range(n_fus):
        column = []
        for address in range(length):
            reg = draw(st.integers(0, 3))
            kind = draw(st.integers(0, 2))
            if kind == 0:
                data = DataOp(lookup("iadd"), Reg(reg),
                              Const(draw(st.integers(-3, 3))),
                              Reg(draw(st.integers(0, 3))))
            elif kind == 1:
                data = DataOp(lookup("lt"), Reg(reg),
                              Const(draw(st.integers(-2, 2))))
            else:
                data = DataOp(lookup("nop"))
            if address == length - 1:
                control = None  # halt
            else:
                t1 = draw(st.integers(address + 1, length - 1))
                if draw(st.booleans()):
                    control = ControlOp(Condition.ALWAYS_T1, t1)
                else:
                    t2 = draw(st.integers(address + 1, length - 1))
                    control = ControlOp(Condition.CC_TRUE, t1, t2,
                                        index=draw(st.integers(0, n_fus - 1)))
            sync = draw(st.sampled_from([SyncValue.BUSY, SyncValue.DONE]))
            column.append(Parcel(data, control, sync))
        columns.append(column)
    return Program(columns)


class TestTrackerProperties:
    @given(random_programs())
    @settings(max_examples=40, deadline=None)
    def test_exact_partitions_always_valid(self, program):
        machine = XimdMachine(program, config=lenient(program.width),
                              trace=True, tracker=TrackerKind.EXACT)
        machine.run(200)
        for record in machine.trace:
            assert is_valid_partition(record.partition, program.width)

    @given(random_programs())
    @settings(max_examples=40, deadline=None)
    def test_heuristic_partitions_always_valid(self, program):
        machine = XimdMachine(program, config=lenient(program.width),
                              trace=True, tracker=TrackerKind.HEURISTIC)
        machine.run(200)
        for record in machine.trace:
            assert is_valid_partition(record.partition, program.width)

    @given(random_programs())
    @settings(max_examples=40, deadline=None)
    def test_tracking_never_changes_execution(self, program):
        """Trackers observe; results must be identical with and
        without them."""
        results = []
        for tracker in (TrackerKind.NONE, TrackerKind.EXACT,
                        TrackerKind.HEURISTIC):
            machine = XimdMachine(program, config=lenient(program.width),
                                  tracker=tracker)
            result = machine.run(200)
            results.append((result.cycles, tuple(result.registers)))
        assert results[0] == results[1] == results[2]

    @given(random_programs())
    @settings(max_examples=30, deadline=None)
    def test_first_cycle_is_single_sset(self, program):
        machine = XimdMachine(program, config=lenient(program.width),
                              trace=True, tracker=TrackerKind.EXACT)
        machine.run(200)
        if machine.trace.records:
            assert machine.trace[0].partition == \
                (tuple(range(program.width)),)


class TestDisassemblyProperty:
    @given(random_programs())
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_execution_equivalence(self, program):
        text = disassemble(program)
        rebuilt = assemble(text)
        r1 = run_ximd(program, config=lenient(program.width),
                      max_cycles=200)
        r2 = run_ximd(rebuilt, config=lenient(program.width),
                      max_cycles=200)
        assert r1.cycles == r2.cycles
        assert r1.registers == r2.registers


class TestGenerators:
    def test_random_words_reproducible_and_one_indexed(self):
        a = random_words(10, seed=3)
        b = random_words(10, seed=3)
        assert a == b
        assert a[0] == 0 and len(a) == 11

    def test_random_ints_range(self):
        values = random_ints(50, seed=1, lo=-5, hi=5)
        assert all(-5 <= v < 5 for v in values[1:])

    def test_popcount(self):
        assert popcount32(0) == 0
        assert popcount32(0xFFFFFFFF) == 32
        assert popcount32(-1) == 32  # masked to 32-bit pattern
        assert popcount32(0b1011) == 3

    def test_branchy_sources_parse_and_distinct_bases(self):
        from repro.compiler import lower_unit, parse_xc
        sources, oracles, bases = branchy_loop_sources(4, seed=5)
        assert len(set(bases)) == 4
        for i, source in enumerate(sources):
            functions = lower_unit(parse_xc(source))
            assert f"loop{i}" in functions

    def test_dag_oracle_agrees_with_itself(self):
        source, oracle = random_dag_source(20, seed=4)
        assert oracle(1, 2, 3, 4, 5, 6) == oracle(1, 2, 3, 4, 5, 6)

    @given(st.integers(0, 30))
    @settings(max_examples=10, deadline=None)
    def test_dag_sources_always_compile(self, seed):
        from repro.compiler import compile_xc
        source, _ = random_dag_source(12, seed=seed)
        compile_xc(source, width=4)


class TestTraceRendering:
    def test_halted_fu_renders_dashes(self):
        program = assemble("""
.width 2
-
| halt ; nop
| -> . ; nop
-
| empty
| halt ; nop
""")
        machine = XimdMachine(program, trace=True,
                              tracker=TrackerKind.HEURISTIC)
        machine.run(10)
        text = machine.trace.format()
        assert "--:" in text  # FU0 halted in cycle 1

    def test_comments_column(self):
        program = assemble(".width 1\n-\n| halt ; nop\n")
        machine = XimdMachine(program, trace=True)
        machine.run(10)
        text = machine.trace.format(comments=["startup"])
        assert "startup" in text
