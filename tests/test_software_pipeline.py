"""Tests for loop rotation and modulo scheduling."""

import pytest

from repro.compiler import (
    Branch,
    compile_xc,
    lower_unit,
    modulo_schedule,
    parse_xc,
    pipeline_function,
    rotate_while_loops,
    simplify_function,
)
from repro.compiler.dataflow import remove_unreachable
from repro.compiler.percolation import percolate_function
from repro.machine import XimdMachine
from repro.workloads import livermore12_reference, random_ints

LL12 = """
func ll12(n) {
  var k;
  array Y @ 1024;
  array X @ 2048;
  k = 1;
  while (k <= n) { X[k] = Y[k+1] - Y[k]; k = k + 1; }
}
"""


def prepared(source, name):
    fn = lower_unit(parse_xc(source))[name]
    remove_unreachable(fn)
    simplify_function(fn)
    percolate_function(fn)
    simplify_function(fn)
    return fn


class TestRotation:
    def test_while_becomes_self_loop(self):
        fn = prepared(LL12, "ll12")
        rotated = rotate_while_loops(fn)
        assert rotated == 1
        self_loops = [
            name for name, block in fn.blocks.items()
            if isinstance(block.terminator, Branch)
            and name in block.terminator.successors()
        ]
        assert len(self_loops) == 1

    def test_rotation_preserves_semantics(self):
        # compile with pipelining off but rotation happens inside the
        # pipeliner; instead compare pipeline=True vs False end to end
        n = 13
        y = random_ints(n + 1, seed=5)
        outputs = []
        for pipeline in (False, True):
            cf = compile_xc(LL12, width=4, pipeline=pipeline)
            machine = XimdMachine(cf.program)
            machine.regfile.poke(cf.register("n"), n)
            for i in range(1, n + 2):
                machine.memory.poke(1024 + i, y[i])
            machine.run(100_000)
            outputs.append([machine.memory.peek(2048 + k)
                            for k in range(1, n + 1)])
        assert outputs[0] == outputs[1]
        assert outputs[0] == livermore12_reference(y, n)[1:]


class TestModuloScheduling:
    def _loop_block(self):
        fn = prepared(LL12, "ll12")
        rotate_while_loops(fn)
        for name, block in fn.blocks.items():
            if isinstance(block.terminator, Branch) and \
                    name in block.terminator.successors():
                return block
        raise AssertionError("no self loop")

    def test_finds_overlapped_schedule(self):
        block = self._loop_block()
        increment = next(i for i, op in enumerate(block.ops)
                         if op.dest is not None
                         and op.dest.name == "k" and op.a is not None)
        schedule = modulo_schedule(block, width=4,
                                   increment_node=increment)
        assert schedule is not None
        assert schedule.stages >= 2

    def test_compare_in_stage_zero(self):
        block = self._loop_block()
        increment = next(i for i, op in enumerate(block.ops)
                         if op.dest is not None and op.dest.name == "k")
        schedule = modulo_schedule(block, width=4,
                                   increment_node=increment)
        assert schedule.sigma[schedule.compare_node] <= schedule.ii - 2
        assert schedule.sigma[increment] <= schedule.ii - 1

    def test_mrt_never_overflows(self):
        block = self._loop_block()
        increment = next(i for i, op in enumerate(block.ops)
                         if op.dest is not None and op.dest.name == "k")
        for width in (2, 3, 4, 8):
            schedule = modulo_schedule(block, width=width,
                                       increment_node=increment)
            if schedule is None:
                continue
            rows = {}
            for node, sigma in enumerate(schedule.sigma):
                rows.setdefault(sigma % schedule.ii, []).append(node)
            assert all(len(nodes) <= width for nodes in rows.values())

    def test_narrow_machine_may_decline(self):
        block = self._loop_block()
        # width 1 can't overlap profitably; None (no pipelining) is the
        # correct answer rather than a bogus schedule
        schedule = modulo_schedule(block, width=1)
        assert schedule is None or schedule.stages >= 2


class TestEndToEnd:
    @pytest.mark.parametrize("n", [0, 1, 2, 3, 4, 5, 8, 25, 100])
    def test_correct_across_versioning_boundary(self, n):
        """The guard dispatches short trips to the simple loop; every
        trip count must produce identical results."""
        y = random_ints(n + 1, seed=n)
        cf = compile_xc(LL12, width=4, pipeline=True)
        machine = XimdMachine(cf.program)
        machine.regfile.poke(cf.register("n"), n)
        for i in range(1, n + 2):
            machine.memory.poke(1024 + i, y[i])
        machine.run(100_000)
        got = [0] + [machine.memory.peek(2048 + k)
                     for k in range(1, n + 1)]
        assert got == livermore12_reference(y, n)

    def test_pipelined_is_faster_asymptotically(self):
        n = 200
        y = random_ints(n + 1, seed=1)
        cycles = {}
        for pipeline in (False, True):
            cf = compile_xc(LL12, width=4, pipeline=pipeline)
            machine = XimdMachine(cf.program)
            machine.regfile.poke(cf.register("n"), n)
            for i in range(1, n + 2):
                machine.memory.poke(1024 + i, y[i])
            cycles[pipeline] = machine.run(100_000).cycles
        assert cycles[True] < cycles[False]

    def test_induction_variable_final_value_matches(self):
        n = 50
        y = random_ints(n + 1, seed=2)
        finals = []
        for pipeline in (False, True):
            cf = compile_xc(LL12, width=4, pipeline=pipeline)
            machine = XimdMachine(cf.program)
            machine.regfile.poke(cf.register("n"), n)
            for i in range(1, n + 2):
                machine.memory.poke(1024 + i, y[i])
            machine.run(100_000)
            finals.append(machine.regfile.peek(cf.register("k")))
        assert finals[0] == finals[1] == n + 1

    def test_reduction_loop_pipelines_correctly(self):
        source = """
func dot(n) {
  var i, acc;
  array A @ 1024;
  array B @ 4096;
  i = 1; acc = 0;
  while (i <= n) { acc = acc + A[i] * B[i]; i = i + 1; }
  return acc;
}
"""
        n = 40
        a = random_ints(n, seed=3)
        b = random_ints(n, seed=4)
        results = []
        for pipeline in (False, True):
            cf = compile_xc(source, width=4, pipeline=pipeline)
            machine = XimdMachine(cf.program)
            machine.regfile.poke(cf.register("n"), n)
            for i in range(1, n + 1):
                machine.memory.poke(1024 + i, a[i])
                machine.memory.poke(4096 + i, b[i])
            machine.run(100_000)
            results.append(machine.regfile.peek(cf.register("acc")))
        expected = sum(a[i] * b[i] for i in range(1, n + 1))
        assert results[0] == results[1] == expected

    def test_descending_loop_pipelines(self):
        source = """
func down(n) {
  var i, acc;
  array A @ 1024;
  i = n; acc = 0;
  while (i >= 1) { acc = acc + A[i]; i = i - 1; }
  return acc;
}
"""
        n = 30
        a = random_ints(n, seed=6)
        results = []
        for pipeline in (False, True):
            cf = compile_xc(source, width=4, pipeline=pipeline)
            machine = XimdMachine(cf.program)
            machine.regfile.poke(cf.register("n"), n)
            for i in range(1, n + 1):
                machine.memory.poke(1024 + i, a[i])
            machine.run(100_000)
            results.append(machine.regfile.peek(cf.register("acc")))
        assert results[0] == results[1] == sum(a[1:n + 1])
