"""The specializing code generator: eligibility, caching, fallback.

The three-way differential identity (reference vs fast vs specialized)
lives in ``tests/test_engine.py``; this file pins the machinery around
the generated loops:

* ``engine="specialized"`` raises with a named blocker list whenever
  the tier is unavailable, and ``engine="auto"`` falls back
  specialized → fast → reference transparently with ``engine_used``
  reporting the choice;
* compiled runners are cached on the program, keyed on the config and
  telemetry fingerprint, and the cache is dropped when (and only
  when) the program's columns are mutated — a late label addition
  must *not* throw away a hot compiled loop, a column edit must;
* the generated source itself is inspectable and structurally folds
  the telemetry tier (no observer code at tier 0).
"""

import io

import pytest

from repro.asm import assemble
from repro.isa import Const, DataOp, Parcel, Reg, SyncValue
from repro.isa.opcodes import OPCODES
from repro.machine import (
    MAX_SPECIALIZED_SLOTS,
    MachineError,
    Program,
    TrackerKind,
    VliwMachine,
    XimdMachine,
    research_config,
    specialized_eligible,
    specialized_path_blockers,
    specialized_source,
)
from repro.machine.codegen import specialized_runner
from repro.machine.engine import refresh_program_caches
from repro.obs import JsonlSink, Observer, recording_observer
from repro.workloads import TPROC_REGS, tproc_source

_TPROC_REGS = {TPROC_REGS[n]: v for n, v in zip("abcd", (5, 6, 7, 8))}


def _tproc(**kwargs):
    machine = XimdMachine(assemble(tproc_source()), **kwargs)
    for index, value in _TPROC_REGS.items():
        machine.regfile.poke(index, value)
    return machine


class TestEligibility:
    def test_default_machine_is_eligible(self):
        machine = _tproc()
        assert specialized_eligible(machine)
        assert specialized_path_blockers(machine) == []

    def test_tracker_blocks_specialization_but_not_fast(self):
        machine = _tproc(tracker=TrackerKind.EXACT)
        blockers = specialized_path_blockers(machine)
        assert any("SSET tracker" in blocker for blocker in blockers)
        machine.run(1_000)
        assert machine.engine_used == "fast"

    def test_unsampled_ring_sink_blocks_specialization(self):
        machine = _tproc(obs=recording_observer())
        blockers = specialized_path_blockers(machine)
        assert any("unsampled event tracing" in blocker
                   for blocker in blockers)
        machine.run(1_000)
        assert machine.engine_used == "fast"

    def test_fast_blockers_are_inherited(self):
        """Everything the fast engine refuses, specialized refuses."""
        machine = _tproc(obs=Observer(JsonlSink(io.StringIO())))
        fast_only = {"trace": _tproc(trace=True), "non-ring": machine}
        for name, blocked in fast_only.items():
            blockers = specialized_path_blockers(blocked)
            assert blockers, name
            blocked.run(1_000)
            assert blocked.engine_used == "reference", name

    def test_oversized_program_blocked(self):
        nop = OPCODES["nop"]
        column = [Parcel(DataOp(nop), None, SyncValue.DONE)
                  for _ in range(MAX_SPECIALIZED_SLOTS + 1)]
        machine = XimdMachine(
            Program([column]),
            config=research_config(1, max_cycles=1 << 20))
        blockers = specialized_path_blockers(machine)
        assert any("too large to specialize" in blocker
                   for blocker in blockers)
        machine.run()
        assert machine.engine_used == "fast"

    def test_explicit_specialized_raises_with_blockers(self):
        machine = _tproc(tracker=TrackerKind.EXACT)
        with pytest.raises(MachineError,
                           match="specialized engine unavailable: "
                                 ".*SSET tracker"):
            machine.run(1_000, engine="specialized")

    def test_unknown_engine_still_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            _tproc().run(1_000, engine="warp")

    def test_explicit_specialized_runs(self):
        for machine in (_tproc(), VliwMachine(assemble(tproc_source()))):
            for index, value in _TPROC_REGS.items():
                machine.regfile.poke(index, value)
            machine.run(10_000, engine="specialized")
            assert machine.engine_used == "specialized"


class TestRunnerCache:
    def test_runner_cached_across_runs(self):
        """The cache lives on the program object: fresh machines over
        the same (unmutated) program reuse the compiled loop."""
        program = assemble(tproc_source())
        machine = XimdMachine(program)
        runner = specialized_runner(machine, "ximd")
        machine.run(10_000)
        assert machine.engine_used == "specialized"
        assert specialized_runner(XimdMachine(program),
                                  "ximd") is runner

    def test_cache_keyed_on_telemetry_tier(self):
        program = assemble(tproc_source())
        tier0 = XimdMachine(program, obs=Observer())
        tier1 = XimdMachine(program,
                            obs=recording_observer(sample_every=8))
        bare = XimdMachine(program)
        runners = {specialized_runner(machine, "ximd")
                   for machine in (bare, tier0, tier1)}
        assert len(runners) == 3

    def test_cache_keyed_on_config(self):
        program = assemble(tproc_source())
        width = program.width
        plain = XimdMachine(program)
        latched = XimdMachine(
            program, config=research_config(width, write_latency=2))
        assert (specialized_runner(plain, "ximd")
                is not specialized_runner(latched, "ximd"))

    def test_column_edit_invalidates_compiled_loop(self):
        """Mutating a parcel after a cached run must recompile; the
        recompiled loop must execute the *new* program."""

        def inc_parcel(amount):
            return Parcel(
                DataOp(OPCODES["iadd"], Reg(0), Const(amount), Reg(0)),
                None, SyncValue.DONE)

        program = Program([[inc_parcel(1)]])
        config = research_config(1)
        first = XimdMachine(program, config=config)
        first.run(100)
        assert first.engine_used == "specialized"
        assert first.regfile.snapshot()[0] == 1
        stale = specialized_runner(
            XimdMachine(program, config=config), "ximd")

        program.columns[0][0] = inc_parcel(7)
        second = XimdMachine(program, config=config)
        fresh = specialized_runner(second, "ximd")
        assert fresh is not stale
        second.run(100)
        assert second.engine_used == "specialized"
        assert second.regfile.snapshot()[0] == 7

    def test_late_label_addition_keeps_compiled_loop(self):
        """Labels are lookup metadata, not executed state: adding one
        after a run must not drop the codegen cache."""
        program = assemble(tproc_source())
        runner = specialized_runner(XimdMachine(program), "ximd")
        program.labels["late"] = 0
        assert specialized_runner(XimdMachine(program),
                                  "ximd") is runner

    def test_decode_cache_shares_invalidation(self):
        """The decode cache and codegen cache invalidate together."""
        program = assemble(tproc_source())
        decoded, codegen = refresh_program_caches(program)
        specialized_runner(XimdMachine(program), "ximd")
        assert codegen
        program.columns[0][0] = None
        decoded_after, codegen_after = refresh_program_caches(program)
        assert decoded_after is not decoded
        assert codegen_after == {}


class TestGeneratedSource:
    def test_source_attached_to_runner(self):
        machine = _tproc()
        runner = specialized_runner(machine, "ximd")
        assert runner._source == specialized_source(machine, "ximd")
        assert "def _runner(machine, limit):" in runner._source

    def test_tier0_source_has_no_event_emission(self):
        """The telemetry tier is folded at generation time: a tier-0
        (counter-only) loop contains no emit calls and no sampling
        guard; a tier-1 loop contains exactly the modulo guard."""
        tier0 = specialized_source(_tproc(obs=Observer()), "ximd")
        assert "emit_fn" not in tier0
        assert "cycle %" not in tier0
        tier1 = specialized_source(
            _tproc(obs=recording_observer(sample_every=8)), "ximd")
        assert "emit_fn" in tier1
        assert "not cycle % 8" in tier1

    def test_obs_off_source_has_no_counters(self):
        source = specialized_source(_tproc(), "ximd")
        assert "class_counts" not in source
        assert "wait_matrix" not in source
        assert "emit_fn" not in source

    def test_vliw_source_compiles(self):
        source = specialized_source(
            VliwMachine(assemble(tproc_source())), "vliw")
        compile(source, "<test>", "exec")
