"""Sync observability: wait attribution, barrier skew, critical path.

Satellite coverage for the synchronization profiler (see README
"Observability"):

* the tier-0 wait matrix and barrier-site skew profiles fold
  bit-identically on the fast engine and the reference interpreter,
  and ``RunReport.sync`` agrees across tiers (counters vs full trace);
* barrier skew means what it says: first arrival at the barrier site
  to the release cycle, per FU, with the early arriver charged;
* the critical-path analyzer: interval building from sync-edge events,
  chain ordering, and the aggregate matrix fallback;
* the ``python -m repro.obs sync`` CLI on both input kinds;
* diff policy: the ``sync`` report/summary section is advisory while
  sync-named *metrics* (``branch_mix.sync``, ``sync_done``) stay
  blocking; skew and failed polls count as lower-is-better;
* device-port counters (Fig-12 polling) fold into the metrics
  registry and the ``RunReport.io`` section.
"""

import json

import pytest

from repro.asm import assemble
from repro.machine import XimdMachine
from repro.obs import (
    JsonlSink,
    Observer,
    RunReport,
    SyncEdgeEvent,
    critical_path_from_events,
    critical_path_from_matrix,
    format_wait_matrix,
    intervals_from_events,
    recording_observer,
)
from repro.obs.__main__ import main as obs_main
from repro.obs.diff import is_advisory_path, metric_direction
from repro.workloads import (
    BITCOUNT_REGS,
    bitcount_memory,
    bitcount_total_source,
    iosync_sync_source,
    make_devices,
    random_words,
)

_BC_DATA = random_words(24, seed=3)


def _bitcount(**kwargs):
    """The four-way ALL-sync barrier workload (Example 3)."""
    machine = XimdMachine(assemble(bitcount_total_source()), **kwargs)
    machine.regfile.poke(BITCOUNT_REGS["n"], len(_BC_DATA))
    for address, value in bitcount_memory(_BC_DATA).items():
        machine.memory.poke(address, value)
    return machine


def _iosync(**kwargs):
    p1 = [(2, 11), (18, 12), (34, 13)]
    p2 = [(10, 21), (26, 22), (42, 23)]
    devices, _in1, _in2, _out1, _out2 = make_devices(p1, p2)
    return XimdMachine(assemble(iosync_sync_source()), devices=devices,
                       **kwargs)


#: 2-FU skew fixture: FU0 signals DONE and parks at the @01 barrier on
#: cycle 1; FU1 detours through a delay chain, signals DONE on cycle 2,
#: and reaches the same barrier a cycle later.  FU0 therefore waits on
#: FU1 alone and accrues all the skew; FU1 releases with none.  (The
#: halt row keeps FU0 DONE so the late arriver never sees it BUSY
#: between its release and the halted-FUs-read-DONE rule kicking in.)
SKEWED_BARRIER = """
.width 2
-
| -> @01 ; nop ; done
| -> @02 ; nop
-
| if all @04, @01 ; nop ; done
| if all @04, @01 ; nop ; done
-
| empty
| -> @03 ; nop
-
| empty
| -> @01 ; nop ; done
-
=> halt
| nop ; done
| nop ; done
"""


def _sync_state(machine):
    counters = machine.counters
    return (tuple(counters.wait_matrix),
            tuple((site, tuple(cells))
                  for site, cells in counters.barrier_profiles.items()))


class TestWaitMatrixDifferential:
    @pytest.mark.parametrize("factory", [_bitcount],
                             ids=["bitcount-ximd"])
    def test_fast_matches_reference(self, factory):
        machines = {}
        for engine in ("reference", "fast"):
            machine = factory(obs=Observer())
            machine.run(1_000_000, engine=engine)
            assert machine.engine_used == engine
            machines[engine] = machine
        assert (_sync_state(machines["fast"])
                == _sync_state(machines["reference"]))
        # the workload actually exercises the matrix
        assert sum(machines["fast"].counters.wait_matrix) > 0
        assert machines["fast"].counters.barrier_profiles
        fast = RunReport.from_machine(machines["fast"])
        ref = RunReport.from_machine(machines["reference"])
        assert fast.sync == ref.sync

    def test_sync_section_cross_tier(self):
        counted = _bitcount(obs=Observer())
        counted.run(1_000_000, engine="fast")
        tier0 = RunReport.from_machine(counted)

        obs = recording_observer()
        traced = _bitcount(obs=obs)
        traced.run(1_000_000, engine="reference")
        tier2 = RunReport.from_events(obs.sinks[0].events)

        assert tier0.sync == tier2.sync
        assert tier0.sync["wait_cycles"] > 0
        assert tier0.sync["barriers"]

    def test_edges_equal_matrix(self):
        """Every wait-matrix charge has exactly one SyncEdgeEvent twin
        in the full trace."""
        obs = recording_observer()
        machine = _bitcount(obs=obs)
        machine.run(1_000_000, engine="reference")
        edges = [e for e in obs.sinks[0].events
                 if isinstance(e, SyncEdgeEvent)]
        rows = machine.counters.wait_rows()
        assert len(edges) == sum(sum(row) for row in rows)
        rebuilt = [[0] * len(rows) for _ in rows]
        for edge in edges:
            rebuilt[edge.waiter][edge.blocker] += 1
        assert rebuilt == rows


class TestBarrierSkew:
    @pytest.mark.parametrize("engine", ["reference", "fast"])
    def test_early_arriver_accrues_the_skew(self, engine):
        machine = XimdMachine(assemble(SKEWED_BARRIER), obs=Observer())
        machine.run(1_000, engine=engine)
        counters = machine.counters
        n = counters.n_fus
        # FU0 waited on FU1 only; FU1 never waited
        waited_on = {(w, b): counters.wait_matrix[w * n + b]
                     for w in range(n) for b in range(n)
                     if counters.wait_matrix[w * n + b]}
        assert set(waited_on) == {(0, 1)}
        profiles = counters.barrier_profiles
        assert set(profiles) == {(1, 0), (1, 1)}
        count0, total0, max0 = profiles[(1, 0)]
        count1, total1, max1 = profiles[(1, 1)]
        assert (count0, count1) == (1, 1)
        # first arrival -> release: FU0's skew is exactly its charged
        # wait cycles at the barrier; the late arriver releases clean
        assert total0 == max0 == waited_on[(0, 1)] > 0
        assert total1 == max1 == 0

    def test_skew_identical_across_engines(self):
        states = []
        for engine in ("reference", "fast"):
            machine = XimdMachine(assemble(SKEWED_BARRIER),
                                  obs=Observer())
            machine.run(1_000, engine=engine)
            states.append(_sync_state(machine))
        assert states[0] == states[1]


def _edge(cycle, waiter, blocker, pc=0x10, cond="all"):
    return SyncEdgeEvent(machine="ximd", cycle=cycle, waiter=waiter,
                         blocker=blocker, pc=pc, cond=cond)


class TestCriticalPath:
    def test_interval_merging(self):
        events = ([_edge(c, 0, 1) for c in (10, 11, 12, 13)]
                  + [_edge(c, 0, 1) for c in (30, 31)])
        intervals = intervals_from_events(events)
        assert [(i.start, i.end, i.edges, i.cycles) for i in intervals] \
            == [(10, 13, 4, 4), (30, 31, 2, 2)]

    def test_sampled_stride_scales_cycles(self):
        """Edges observed every 4th cycle stand for 4 cycles each."""
        events = [_edge(c, 0, 1) for c in (8, 12, 16)]
        (interval,) = intervals_from_events(events)
        assert interval.edges == 3
        assert interval.cycles == 12

    def test_chain_follows_the_release_order(self):
        """FU2 held FU1, then FU1 held FU0: one 9-cycle chain."""
        events = ([_edge(c, 1, 2) for c in range(0, 5)]
                  + [_edge(c, 0, 1) for c in range(5, 9)])
        path = critical_path_from_events(events)
        assert path.source == "events"
        assert path.total_cycles == 9
        assert [(l["blocker"], l["waiter"]) for l in path.links] \
            == [(2, 1), (1, 0)]

    def test_concurrent_waits_do_not_chain(self):
        """Two overlapping waits on different blockers: the path is the
        heavier single interval, not their sum."""
        events = ([_edge(c, 0, 1) for c in range(0, 6)]
                  + [_edge(c, 2, 3) for c in range(0, 4)])
        path = critical_path_from_events(events)
        assert path.total_cycles == 6
        assert len(path.links) == 1

    def test_matrix_fallback_heaviest_path(self):
        rows = [[0, 5, 0],
                [0, 0, 7],
                [0, 0, 0]]
        path = critical_path_from_matrix(rows)
        assert path.source == "matrix"
        assert path.total_cycles == 12
        assert [(l["blocker"], l["waiter"]) for l in path.links] \
            == [(2, 1), (1, 0)]

    def test_empty_inputs(self):
        assert critical_path_from_events([]).total_cycles == 0
        assert critical_path_from_matrix([]).total_cycles == 0
        assert critical_path_from_matrix([[0, 0], [0, 0]]).links == []

    def test_render_and_matrix_format(self):
        rows = [[0, 3], [0, 0]]
        text = format_wait_matrix(rows)
        assert "waits on:" in text
        assert "." in text           # zeros render as dots
        assert "3" in text
        rendered = critical_path_from_matrix(rows).render()
        assert "critical" in rendered


class TestSyncCli:
    def _trace(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        obs = Observer(JsonlSink(path))
        machine = _bitcount(obs=obs)
        machine.run(1_000_000, engine="reference")
        obs.close()
        return path

    def test_trace_input(self, tmp_path, capsys):
        path = self._trace(tmp_path)
        assert obs_main(["sync", str(path)]) == 0
        out = capsys.readouterr().out
        assert "synchronization profile" in out
        assert "waits on:" in out
        assert "barrier skew" in out
        assert "critical path" in out

    def test_report_input(self, tmp_path, capsys):
        machine = _bitcount(obs=Observer())
        machine.run(1_000_000, engine="fast")
        report = tmp_path / "report.json"
        report.write_text(json.dumps(
            RunReport.from_machine(machine).to_dict()))
        assert obs_main(["sync", str(report)]) == 0
        out = capsys.readouterr().out
        assert "run report" in out
        assert "waits on:" in out

    def test_json_output(self, tmp_path, capsys):
        path = self._trace(tmp_path)
        assert obs_main(["sync", str(path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["sync"]["wait_cycles"] > 0
        assert payload["critical_path"]["total_cycles"] > 0
        assert payload["critical_path"]["links"]


class TestDiffPolicy:
    def test_sync_section_is_advisory(self):
        assert is_advisory_path("sync.wait_cycles")
        assert is_advisory_path("sync.fig11_bitcount.wait_edges")
        assert is_advisory_path("sync.barriers.0.max_skew")

    def test_sync_named_metrics_stay_blocking(self):
        assert not is_advisory_path("branch_mix.sync")
        assert not is_advisory_path("sync_done")
        assert not is_advisory_path("workloads.minmax.sync_cycles_total")

    def test_skew_and_polls_are_lower_is_better(self):
        assert metric_direction("sync.barriers.0.max_skew") == "lower"
        assert metric_direction("io.polls_failed") == "lower"


class TestIoSection:
    def test_device_ports_fold_into_registry_and_report(self):
        obs = Observer()
        machine = _iosync(obs=obs)
        machine.run(1_000_000)
        assert machine.engine_used == "specialized"  # devices run natively
        metrics = obs.registry.to_dict()
        port_metrics = {name for name in metrics
                        if ".port" in name and name.endswith(".reads")}
        assert port_metrics
        report = RunReport.from_machine(machine)
        assert report.io["reads"] > 0
        assert report.io["writes"] > 0
        assert any(port.get("polls_failed", 0) >= 0
                   for port in report.io["ports"])
        payload = report.to_dict()
        assert payload["io"]["reads"] == report.io["reads"]

    def test_no_devices_no_io_section(self):
        machine = _bitcount(obs=Observer())
        machine.run(1_000_000)
        assert RunReport.from_machine(machine).io == {}
