"""Tiered telemetry: sampled tracing fidelity and counter-tier reports.

Satellite coverage for the telemetry tiers (see README "Observability"):

* tier-1 sampled tracing emits the full typed-event vocabulary exactly
  on cycles where ``cycle % sample_every == 0`` — event counts, cycle
  stamps at the sample boundaries, and ``sample_every=1`` degenerating
  to the unsampled tier-2 stream are all pinned here;
* the fast engine's sampled stream is event-identical to the reference
  interpreter sampled at the same rate;
* :meth:`RunReport.from_machine` (tier-0, counter-only) agrees with
  :meth:`RunReport.from_events` (tier-2, full trace) on every field the
  counter tier can compute.
"""

import math

import pytest

from repro.asm import assemble
from repro.machine import VliwMachine, XimdMachine
from repro.obs import (
    CycleEvent,
    Observer,
    RunReport,
    event_to_dict,
    recording_observer,
)
from repro.workloads import (
    BITCOUNT_REGS,
    FIGURE10_DATA,
    MINMAX_REGS,
    bitcount_memory,
    bitcount_total_source,
    bitcount_vliw_source,
    minmax_memory,
    minmax_source,
    random_words,
)

_BC_DATA = random_words(48, seed=4)


def _minmax(**kwargs):
    machine = XimdMachine(assemble(minmax_source("halt")), **kwargs)
    machine.regfile.poke(MINMAX_REGS["n"], len(FIGURE10_DATA))
    for address, value in minmax_memory(FIGURE10_DATA).items():
        machine.memory.poke(address, value)
    return machine


def _bitcount_vliw(**kwargs):
    machine = VliwMachine(assemble(bitcount_vliw_source()), **kwargs)
    machine.regfile.poke(BITCOUNT_REGS["n"], 48)
    for address, value in bitcount_memory(_BC_DATA).items():
        machine.memory.poke(address, value)
    return machine


def _run_traced(factory, engine, sample_every=1):
    obs = recording_observer(sample_every=sample_every)
    machine = factory(obs=obs)
    machine.run(1_000_000, engine=engine)
    assert machine.engine_used == engine
    return machine, obs.sinks[0].events


def _event_dicts(events):
    return [event_to_dict(e) for e in events]


class TestSampledTracing:
    @pytest.mark.parametrize("factory", [_minmax, _bitcount_vliw],
                             ids=["ximd", "vliw"])
    @pytest.mark.parametrize("sample_every", [4, 7])
    def test_event_counts_and_boundaries(self, factory, sample_every):
        """Every sampled cycle is a multiple of N, and every multiple
        of N up to the halt is sampled — no drift at the boundaries."""
        machine, events = _run_traced(factory, "fast",
                                      sample_every=sample_every)
        cycle_events = [e for e in events if isinstance(e, CycleEvent)]
        stamps = [e.cycle for e in cycle_events]
        assert all(stamp % sample_every == 0 for stamp in stamps)
        assert stamps == sorted(stamps)
        assert len(stamps) == len(set(stamps))
        assert len(cycle_events) == math.ceil(machine.cycle / sample_every)
        # non-cycle events obey the same gate
        assert all(e.cycle % sample_every == 0
                   for e in events if hasattr(e, "cycle"))

    @pytest.mark.parametrize("factory", [_minmax, _bitcount_vliw],
                             ids=["ximd", "vliw"])
    def test_sample_every_one_is_unsampled_reference(self, factory):
        """``sample_every=1`` into a ring buffer runs on the fast path
        (chunk-buffered emission) yet must reproduce the reference
        tier-2 stream event for event."""
        _, full = _run_traced(factory, "reference")
        obs = recording_observer(sample_every=1)
        machine = factory(obs=obs)
        machine.run(1_000_000)
        assert machine.engine_used == "fast"
        assert _event_dicts(obs.sinks[0].events) == _event_dicts(full)

    @pytest.mark.parametrize("factory", [_minmax, _bitcount_vliw],
                             ids=["ximd", "vliw"])
    @pytest.mark.parametrize("sample_every", [2, 5, 16])
    def test_fast_sampled_matches_reference_sampled(self, factory,
                                                    sample_every):
        _, fast = _run_traced(factory, "fast", sample_every=sample_every)
        _, ref = _run_traced(factory, "reference",
                             sample_every=sample_every)
        assert _event_dicts(fast) == _event_dicts(ref)

    @pytest.mark.parametrize("factory", [_minmax, _bitcount_vliw],
                             ids=["ximd", "vliw"])
    def test_sampled_is_subsequence_of_full_trace(self, factory):
        """Sampling selects cycles; it never alters their contents."""
        _, full = _run_traced(factory, "reference")
        _, sampled = _run_traced(factory, "fast", sample_every=3)
        full_dicts = _event_dicts(full)
        for payload in _event_dicts(sampled):
            assert payload in full_dicts

    def test_sample_every_validated(self):
        with pytest.raises(ValueError, match="sample_every"):
            Observer(sample_every=0)


class TestCounterTierReport:
    """RunReport.from_machine vs from_events, across tiers and engines."""

    #: fields from_machine cannot compute at the counter tier.
    EVENT_ONLY = {"occupancy_sparkline", "hot_pcs", "sset_histogram",
                  "mean_streams", "max_streams", "multi_stream_fraction",
                  "partition_changes", "stall_by_streams", "passes",
                  "metrics", "energy"}

    @pytest.mark.parametrize("factory", [_minmax, _bitcount_vliw],
                             ids=["ximd", "vliw"])
    def test_cross_tier_agreement(self, factory):
        counted = factory(obs=Observer())
        counted.run(1_000_000, engine="fast")
        report = RunReport.from_machine(counted)

        _, events = _run_traced(factory, "reference")
        full = RunReport.from_events(events)

        for name in ("machine", "n_fus", "cycles", "data_ops",
                     "utilization", "occupancy", "fu_busy_cycles",
                     "branch_mix", "branches_taken", "sync_done",
                     "barriers", "stall_mix", "op_histogram",
                     "sync", "io"):
            assert getattr(report, name) == getattr(full, name), name
        # the energy model agrees except for the per-FU split, which
        # needs the event stream's per-FU op census
        trimmed = {k: v for k, v in full.energy.items() if k != "per_fu_pj"}
        ours = {k: v for k, v in report.energy.items() if k != "per_fu_pj"}
        assert ours == trimmed
        assert report.energy.get("per_fu_pj") in ((), [], None)

    def test_counter_report_renders(self):
        machine = _minmax(obs=Observer())
        machine.run(1_000_000, engine="fast")
        report = RunReport.from_machine(
            machine, registry=machine.obs.registry)
        text = report.render_text()
        assert "run report" in text
        assert "cycle attribution" in text
        payload = report.to_dict(include_timing=False)
        assert payload["machine"] == "ximd"
        assert payload["metrics"]
