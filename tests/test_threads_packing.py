"""Tests for multi-stream composition, tiles, and Figure 13 packing."""

import pytest

from repro.compiler import (
    CompilerError,
    Tile,
    compile_ir,
    compose_threads,
    generate_tiles,
    is_executable_packing,
    lower_unit,
    pack_exhaustive,
    pack_in_order,
    pack_skyline,
    pack_stacks,
    packed_program,
    pareto_tiles,
    parse_xc,
)
from repro.machine import TrackerKind, XimdMachine

SUM_SRC = """
func sumup(n) {
  var i, acc;
  array A @ {base};
  i = 1; acc = 0;
  while (i <= n) {{ acc = acc + A[i]; i = i + 1; }}
  return acc;
}
"""


def make_thread(name, base, width):
    source = f"""
func {name}(n) {{
  var i, acc;
  array A @ {base};
  i = 1; acc = 0;
  while (i <= n) {{ acc = acc + A[i]; i = i + 1; }}
  return acc;
}}
"""
    fn = lower_unit(parse_xc(source))[name]
    return compile_ir(fn, width)


class TestComposeThreads:
    def test_two_threads_compute_independently(self):
        t1 = make_thread("left", 0x1000, 2)
        t2 = make_thread("right", 0x1800, 2)
        program, placements = compose_threads([t1, t2], total_width=4)
        machine = XimdMachine(program)
        a = list(range(1, 11))
        b = list(range(100, 105))
        machine.regfile.poke(placements[0].register(t1, "n"), len(a))
        machine.regfile.poke(placements[1].register(t2, "n"), len(b))
        for i, value in enumerate(a, start=1):
            machine.memory.poke(0x1000 + i, value)
        for i, value in enumerate(b, start=1):
            machine.memory.poke(0x1800 + i, value)
        machine.run(10_000)
        assert machine.regfile.peek(
            placements[0].register(t1, "__ret")) == sum(a)
        assert machine.regfile.peek(
            placements[1].register(t2, "__ret")) == sum(b)

    def test_register_windows_disjoint(self):
        t1 = make_thread("p", 0x1000, 2)
        t2 = make_thread("q", 0x1800, 2)
        _, placements = compose_threads([t1, t2], total_width=4)
        end0 = placements[0].register_base + placements[0].registers_used
        assert placements[1].register_base >= end0

    def test_barrier_joins_unequal_threads(self):
        """Threads with different running times halt together."""
        t1 = make_thread("short", 0x1000, 2)
        t2 = make_thread("long", 0x1800, 2)
        program, placements = compose_threads([t1, t2], total_width=4)
        machine = XimdMachine(program, trace=True,
                              tracker=TrackerKind.HEURISTIC)
        machine.regfile.poke(placements[0].register(t1, "n"), 2)
        machine.regfile.poke(placements[1].register(t2, "n"), 30)
        for i in range(1, 31):
            machine.memory.poke(0x1000 + i, 1)
            machine.memory.poke(0x1800 + i, 1)
        machine.run(10_000)
        # both streams visible, then joined at the end
        assert machine.trace[-1].partition == ((0, 1, 2, 3),)
        assert any(len(r.partition) == 2 for r in machine.trace)

    def test_too_wide_rejected(self):
        t1 = make_thread("w", 0x1000, 8)
        with pytest.raises(CompilerError):
            compose_threads([t1, t1], total_width=8)


class TestTiles:
    def _fn(self):
        return lower_unit(parse_xc("""
func work(n) {
  var i, acc;
  array A @ 0x1000;
  i = 1; acc = 0;
  while (i <= n) { acc = acc + A[i] * A[i]; i = i + 1; }
  return acc;
}
"""))["work"]

    def test_tiles_cover_requested_widths(self):
        tiles = generate_tiles(self._fn(), widths=(1, 2, 4))
        assert [t.width for t in tiles] == [1, 2, 4]
        assert all(t.height == t.compiled.program.length for t in tiles)

    def test_wider_tiles_are_shorter_or_equal(self):
        tiles = generate_tiles(self._fn(), widths=(1, 2, 4))
        heights = [t.height for t in tiles]
        assert heights[0] >= heights[1] >= heights[2]

    def test_pareto_removes_dominated(self):
        tiles = [Tile("t", 1, 10, None), Tile("t", 2, 10, None),
                 Tile("t", 2, 6, None), Tile("t", 4, 6, None)]
        frontier = pareto_tiles(tiles)
        assert Tile("t", 2, 10, None) not in frontier
        assert Tile("t", 4, 6, None) not in frontier
        assert len(frontier) == 2

    def test_measure_callback(self):
        tiles = generate_tiles(self._fn(), widths=(2,),
                               measure=lambda cf: cf.program.length * 10)
        assert tiles[0].est_cycles == tiles[0].height * 10


class TestPacking:
    def _tiles(self):
        return [Tile("a", 2, 8, None), Tile("b", 2, 5, None),
                Tile("c", 4, 6, None), Tile("d", 2, 3, None)]

    def test_in_order_shelves(self):
        packing = pack_in_order(self._tiles(), total_width=8)
        assert packing.height >= 8
        assert len(packing.placements) == 4

    def test_skyline_no_overlaps(self):
        packing = pack_skyline(self._tiles(), total_width=8)
        for a in packing.placements:
            for b in packing.placements:
                if a is b:
                    continue
                cols = set(a.columns()) & set(b.columns())
                rows = (max(a.base_address, b.base_address) <
                        min(a.top, b.top))
                assert not (cols and rows), "tiles overlap"

    def test_skyline_beats_or_ties_in_order(self):
        tiles = self._tiles()
        assert pack_skyline(tiles, 8).height <= \
            pack_in_order(tiles, 8).height

    def test_exhaustive_beats_or_ties_skyline(self):
        menu = [[t] for t in self._tiles()]
        best = pack_exhaustive(menu, total_width=8)
        assert best.height <= pack_skyline(self._tiles(), 8).height

    def test_exhaustive_explores_tile_choices(self):
        menu = [[Tile("a", 2, 8, None), Tile("a", 4, 4, None)],
                [Tile("b", 2, 8, None), Tile("b", 4, 4, None)]]
        best = pack_exhaustive(menu, total_width=8)
        assert best.height == 4  # both wide variants side by side

    def test_utilization_bounds(self):
        packing = pack_skyline(self._tiles(), 8)
        assert 0 < packing.utilization <= 1

    def test_describe_mentions_threads(self):
        text = pack_skyline(self._tiles(), 8).describe()
        for name in "abcd":
            assert name in text


class TestExecutablePacking:
    def test_stacks_are_executable(self):
        tiles = [Tile(f"t{i}", 2, 4 + i, None) for i in range(3)]
        packing = pack_stacks(tiles, total_width=4)
        assert is_executable_packing(packing)

    def test_partial_overlap_not_executable(self):
        tiles = [Tile("a", 4, 4, None), Tile("b", 2, 4, None)]
        packing = pack_in_order(tiles, total_width=4)
        # b lands on a shelf above a, overlapping half of a's columns
        if packing.height > 4:
            assert not is_executable_packing(packing)

    def test_mixed_widths_rejected_by_stack_packer(self):
        with pytest.raises(CompilerError):
            pack_stacks([Tile("a", 2, 4, None), Tile("b", 4, 4, None)], 8)

    def test_packed_program_runs_stacked_threads(self):
        threads = [make_thread(f"job{i}", 0x1000 + i * 0x200, 2)
                   for i in range(4)]
        tiles = [Tile(t.function.name, 2, t.program.length, t)
                 for t in threads]
        packing = pack_stacks(tiles, total_width=4)
        program, by_thread = packed_program(packing)
        machine = XimdMachine(program)
        expected = {}
        for i, thread in enumerate(threads):
            name = thread.function.name
            placement = by_thread[name]
            base = 0x1000 + i * 0x200
            values = list(range(i + 1, i + 6))
            for j, value in enumerate(values, start=1):
                machine.memory.poke(base + j, value)
            machine.regfile.poke(
                thread.compiled_register_n(placement)
                if hasattr(thread, "compiled_register_n")
                else thread.register("n") + placement.register_base,
                len(values))
            expected[name] = (thread, placement, sum(values))
        machine.run(100_000)
        for name, (thread, placement, total) in expected.items():
            got = machine.regfile.peek(
                thread.register("__ret") + placement.register_base)
            assert got == total

    def test_nonexecutable_packing_rejected(self):
        threads = [make_thread("wide", 0x1000, 4),
                   make_thread("narrow", 0x1800, 2)]
        tiles = [Tile(t.function.name, t.width, t.program.length, t)
                 for t in threads]
        packing = pack_in_order(tiles, total_width=4)
        if not is_executable_packing(packing):
            with pytest.raises(CompilerError):
                packed_program(packing)
