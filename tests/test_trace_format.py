"""Tests for :meth:`AddressTrace.format` — the Figure-10 renderer.

Exercises the optional columns (sync signals, per-cycle comments) and
the halted-FU ``--:`` cells that the figure itself never shows but the
simulators produce once streams finish at different times.
"""

from repro.machine.trace import AddressTrace, TraceRecord


def two_fu_trace(partitions=True):
    trace = AddressTrace(2)
    rows = [
        ((0x00, 0x00), "XX", "--", ((0, 1),)),
        ((0x01, 0x03), "TF", "-D", ((0,), (1,))),
        ((0x02, None), "TX", "B-", ((0,),)),
    ]
    for cycle, (pcs, cc, ss, partition) in enumerate(rows):
        trace.append(TraceRecord(cycle, pcs, cc, ss,
                                 partition if partitions else None))
    return trace


class TestFormat:
    def test_basic_columns(self):
        text = two_fu_trace().format()
        lines = text.splitlines()
        assert lines[0].split() == ["Cycle", "FU0", "FU1", "CC",
                                    "Partition"]
        assert set(lines[1]) == {"-"}          # the separator rule
        assert "Cycle 0" in lines[2]
        assert "00:" in lines[2]
        # no sync column unless asked for
        assert "SS" not in lines[0]

    def test_show_sync_column(self):
        text = two_fu_trace().format(show_sync=True)
        header = text.splitlines()[0].split()
        assert header == ["Cycle", "FU0", "FU1", "CC", "SS", "Partition"]
        body = text.splitlines()[3]            # cycle 1 row
        assert "-D" in body

    def test_halted_fu_renders_dashes(self):
        trace = two_fu_trace()
        assert trace[2].pc_text(1) == "--:"
        text = trace.format()
        last = text.splitlines()[-1]
        assert "02:" in last and "--:" in last

    def test_comments_aligned_to_cycles(self):
        comments = ["start", "fork", "FU1 done"]
        text = two_fu_trace().format(comments=comments)
        lines = text.splitlines()
        assert lines[0].split()[-1] == "Comment"
        assert lines[2].endswith("start")
        assert lines[3].endswith("fork")
        assert lines[4].endswith("FU1 done")

    def test_comments_shorter_than_trace(self):
        # missing entries render as empty cells, not IndexError
        text = two_fu_trace().format(comments=["only cycle 0"])
        lines = text.splitlines()
        assert lines[2].endswith("only cycle 0")
        for row in lines[3:]:
            assert not row.endswith("only cycle 0")
        # rows with no comment are right-stripped, no trailing pad
        assert lines[3] == lines[3].rstrip()

    def test_empty_comments_and_sync_together(self):
        text = two_fu_trace().format(show_sync=True, comments=[])
        header = text.splitlines()[0].split()
        assert header[-2:] == ["SS", "Partition"] or \
            header[-1] == "Comment"
        assert "Comment" in text.splitlines()[0]

    def test_untracked_partition_column_empty(self):
        text = two_fu_trace(partitions=False).format()
        for line in text.splitlines()[2:]:
            assert line.rstrip() == line
            assert "{" not in line

    def test_partition_text(self):
        trace = two_fu_trace()
        assert trace[1].partition_text()       # non-empty when tracked
        assert TraceRecord(0, (0,), "X", "-", None).partition_text() == ""
