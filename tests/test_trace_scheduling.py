"""Tests for superblock formation (trace scheduling)."""

import pytest

from repro.compiler import (
    compile_xc,
    estimate_profile,
    lower_unit,
    parse_xc,
    pick_trace,
    tail_duplicate,
    trace_schedule,
)
from repro.compiler.dataflow import predecessors
from repro.machine import run_ximd

DIAMOND = """
func f(a, b) {
  var r, s;
  r = 0; s = 0;
  if (a < b) { r = a * 2; } else { r = b * 3; }
  s = r + a;
  if (s > 10) { s = s - 10; }
  return s + r;
}
"""


def oracle(a, b):
    r = a * 2 if a < b else b * 3
    s = r + a
    if s > 10:
        s -= 10
    return s + r


class TestProfile:
    def test_loops_weighted_heavier(self):
        fn = lower_unit(parse_xc("""
func f(n) {
  var i;
  i = 0;
  while (i < n) { i = i + 1; }
  return i;
}
"""))["f"]
        profile = estimate_profile(fn)
        loop_blocks = [n for n in fn.blocks if "loop" in n]
        straight = [n for n in fn.blocks if "loop" not in n]
        assert max(profile[n] for n in loop_blocks) > \
            max(profile[n] for n in straight)


class TestPickTrace:
    def test_starts_at_entry(self):
        fn = lower_unit(parse_xc(DIAMOND))["f"]
        trace = pick_trace(fn, estimate_profile(fn))
        assert trace[0] == fn.entry
        assert len(trace) >= 2

    def test_no_repeats(self):
        fn = lower_unit(parse_xc(DIAMOND))["f"]
        trace = pick_trace(fn, estimate_profile(fn))
        assert len(trace) == len(set(trace))


class TestTailDuplication:
    def test_removes_side_entrances(self):
        fn = lower_unit(parse_xc(DIAMOND))["f"]
        profile = estimate_profile(fn)
        trace = pick_trace(fn, profile)
        tail_duplicate(fn, trace)
        fn.validate()
        preds = predecessors(fn)
        for position in range(1, len(trace)):
            name = trace[position]
            if name in fn.blocks:
                on_trace = [p for p in preds[name]
                            if p == trace[position - 1]]
                others = [p for p in preds[name]
                          if p != trace[position - 1]]
                assert not others, f"{name} still side-entered"

    def test_duplication_preserves_semantics(self):
        for a, b in ((1, 5), (5, 1), (7, 7), (-3, 2), (100, 1)):
            fn = lower_unit(parse_xc(DIAMOND))["f"]
            trace_schedule(fn)
            fn.validate()
            from repro.compiler import compile_ir
            cf = compile_ir(fn, 4)
            result = run_ximd(cf.program, registers={
                cf.register("a"): a, cf.register("b"): b})
            assert result.register(cf.register("__ret")) == oracle(a, b)

    def test_compile_after_trace_schedule_full_pipeline(self):
        fn = lower_unit(parse_xc(DIAMOND))["f"]
        formed, duplicated = trace_schedule(fn)
        assert formed >= 1
        from repro.compiler import compile_ir
        cf = compile_ir(fn, 4)
        result = run_ximd(cf.program, registers={
            cf.register("a"): 2, cf.register("b"): 9})
        assert result.register(cf.register("__ret")) == oracle(2, 9)

    def test_trace_scheduling_can_shorten_hot_path(self):
        """Superblock + percolation compacts the likely path at least
        as well as plain block-at-a-time compilation."""
        baseline = compile_xc(DIAMOND, width=8)
        fn = lower_unit(parse_xc(DIAMOND))["f"]
        trace_schedule(fn)
        from repro.compiler import compile_ir
        traced = compile_ir(fn, 8)
        r0 = run_ximd(baseline.program, registers={
            baseline.register("a"): 1, baseline.register("b"): 5})
        r1 = run_ximd(traced.program, registers={
            traced.register("a"): 1, traced.register("b"): 5})
        assert r1.cycles <= r0.cycles + 1  # never meaningfully worse
