"""Tests for the XC language frontend: lexer, parser, lowering."""

import pytest

from repro.compiler import (
    Branch,
    Halt,
    IRError,
    Jump,
    XcSemanticError,
    XcSyntaxError,
    lower_unit,
    parse_xc,
)
from repro.compiler.ir import IRConst, IROp, VReg
from repro.compiler.xc_ast import (
    AssignStmt,
    BinaryExpr,
    IfStmt,
    NumberExpr,
    ReturnStmt,
    WhileStmt,
)


def lower_one(source):
    functions = lower_unit(parse_xc(source))
    assert len(functions) == 1
    return next(iter(functions.values()))


class TestParser:
    def test_function_shape(self):
        decls = parse_xc("func f(a, b) { var t; t = a + b; return t; }")
        assert decls[0].name == "f"
        assert decls[0].params == ["a", "b"]
        assert decls[0].variables == ["t"]

    def test_array_declaration(self):
        decls = parse_xc("func f() { array A @ 0x100; A[0] = 1; }")
        assert decls[0].arrays == [("A", 256)]

    def test_precedence(self):
        decls = parse_xc("func f(a, b, c) { return a + b * c; }")
        expr = decls[0].body[0].value
        assert isinstance(expr, BinaryExpr) and expr.op == "+"
        assert isinstance(expr.right, BinaryExpr) and expr.right.op == "*"

    def test_parenthesized(self):
        decls = parse_xc("func f(a, b, c) { return (a + b) * c; }")
        expr = decls[0].body[0].value
        assert expr.op == "*"

    def test_if_else_and_while(self):
        decls = parse_xc("""
func f(n) {
  var i;
  i = 0;
  while (i < n) {
    if (i > 3) { i = i + 2; } else { i = i + 1; }
  }
  return i;
}
""")
        body = decls[0].body
        assert isinstance(body[1], WhileStmt)
        assert isinstance(body[1].body[0], IfStmt)

    def test_multiple_functions(self):
        decls = parse_xc("func a() { return 1; } func b() { return 2; }")
        assert [d.name for d in decls] == ["a", "b"]

    def test_comments_ignored(self):
        decls = parse_xc("func f() { // nothing\n return 0; }")
        assert isinstance(decls[0].body[0], ReturnStmt)

    def test_syntax_errors(self):
        for bad in (
            "func f( { }",
            "func f() { x = ; }",
            "func f() { if x > 1 { } }",        # missing parens
            "func f() { while (1) { } }",       # condition needs relop
            "func f() { return 1 }",            # missing semicolon
            "f() {}",                           # missing func keyword
            "",                                 # empty unit
        ):
            with pytest.raises(XcSyntaxError):
                parse_xc(bad)


class TestLowering:
    def test_straight_line(self):
        fn = lower_one("func f(a, b) { return a + b; }")
        fn.validate()
        entry = fn.blocks["entry"]
        assert any(op.opcode == "iadd" for op in entry.ops)
        assert isinstance(fn.blocks["exit"].terminator, Halt)

    def test_constant_folding(self):
        fn = lower_one("func f() { return 2 + 3 * 4; }")
        copies = [op for op in fn.blocks["entry"].ops
                  if op.opcode == "copy"]
        assert copies[0].a == IRConst(14)

    def test_unary_minus_constant(self):
        fn = lower_one("func f() { return -5; }")
        assert fn.blocks["entry"].ops[0].a == IRConst(-5)

    def test_array_load_store(self):
        fn = lower_one("""
func f(i, v) { array A @ 512; A[i] = v; return A[i + 1]; }
""")
        opcodes = [op.opcode for block in fn.blocks.values()
                   for op in block.ops]
        assert "store" in opcodes and "load" in opcodes

    def test_store_constant_index_folds_address(self):
        fn = lower_one("func f(v) { array A @ 512; A[3] = v; }")
        stores = [op for op in fn.blocks["entry"].ops if op.is_store]
        assert stores[0].b == IRConst(515)

    def test_if_builds_diamond(self):
        fn = lower_one("""
func f(a) { var r; if (a > 0) { r = 1; } else { r = 2; } return r; }
""")
        branches = [b for b in fn.blocks.values()
                    if isinstance(b.terminator, Branch)]
        assert len(branches) == 1
        assert branches[0].terminator.cmp == "gt"

    def test_while_builds_loop(self):
        fn = lower_one("""
func f(n) { var i; i = 0; while (i < n) { i = i + 1; } return i; }
""")
        fn.validate()
        # some block targets itself or a cycle exists
        from repro.compiler import successors
        succs = successors(fn)
        assert any(
            name in _reachable_from(succs, child)
            for name, children in succs.items() for child in children)

    def test_relops_map(self):
        for relop, mnemonic in (("<", "lt"), ("<=", "le"), (">", "gt"),
                                (">=", "ge"), ("==", "eq"), ("!=", "ne")):
            fn = lower_one(
                f"func f(a, b) {{ if (a {relop} b) {{ }} return 0; }}")
            branches = [b.terminator for b in fn.blocks.values()
                        if isinstance(b.terminator, Branch)]
            assert branches[0].cmp == mnemonic

    def test_undefined_variable(self):
        with pytest.raises(XcSemanticError):
            lower_one("func f() { return ghost; }")

    def test_undefined_array(self):
        with pytest.raises(XcSemanticError):
            lower_one("func f(i) { return A[i]; }")

    def test_duplicate_variable(self):
        with pytest.raises(XcSemanticError):
            lower_one("func f(a) { var a; return a; }")

    def test_code_after_return_is_unreachable_not_fatal(self):
        fn = lower_one("func f() { return 1; return 2; }")
        fn.validate()


def _reachable_from(succs, start):
    seen = {start}
    stack = [start]
    while stack:
        node = stack.pop()
        for child in succs.get(node, ()):
            if child not in seen:
                seen.add(child)
                stack.append(child)
    return seen


class TestIRValidation:
    def test_compare_in_body_rejected(self):
        with pytest.raises(IRError):
            IROp("lt", IRConst(1), IRConst(2))

    def test_missing_operand_rejected(self):
        with pytest.raises(IRError):
            IROp("iadd", IRConst(1), None, VReg("x"))

    def test_store_with_dest_rejected(self):
        with pytest.raises(IRError):
            IROp("store", IRConst(1), IRConst(2), VReg("x"))

    def test_branch_requires_compare_op(self):
        with pytest.raises(IRError):
            Branch("iadd", IRConst(1), IRConst(2), "a", "b")
